//! Complexity accounting: RMRs (DSM / CC-WT / CC-WB), critical events
//! (Definition 2) and fence counts, both cumulatively and per passage.
//!
//! A *passage* spans an `Enter` to the matching `Exit`; for object programs
//! an operation spans an `Invoke` to the matching `Return` and is accounted
//! the same way (Section 5 of the paper treats a passage as a single object
//! operation plus a constant number of extra steps).

use std::ops::Sub;

use crate::ids::ProcId;

/// A bundle of complexity counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Counters {
    /// Events executed (of any kind).
    pub events: u64,
    /// RMRs in the DSM model (remote accesses).
    pub rmr_dsm: u64,
    /// RMRs in the CC model with a write-through protocol.
    pub rmr_wt: u64,
    /// RMRs in the CC model with a write-back protocol.
    pub rmr_wb: u64,
    /// Critical events (Definition 2; includes CAS counted conservatively).
    pub critical: u64,
    /// Completed fences (`EndFence` events, plus `Cas` which carries fence
    /// semantics).
    pub fences: u64,
}

impl Sub for Counters {
    type Output = Counters;

    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            events: self.events - rhs.events,
            rmr_dsm: self.rmr_dsm - rhs.rmr_dsm,
            rmr_wt: self.rmr_wt - rhs.rmr_wt,
            rmr_wb: self.rmr_wb - rhs.rmr_wb,
            critical: self.critical - rhs.critical,
            fences: self.fences - rhs.fences,
        }
    }
}

/// What a completed accounting span was.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// A mutual-exclusion passage (`Enter` → `Exit`).
    Passage,
    /// An object operation (`Invoke(op)` → `Return`), tagged with the
    /// operation code.
    Operation(u32),
}

/// Complexity counters of one completed passage or operation.
#[derive(Clone, Copy, Debug)]
pub struct PassageStats {
    /// The process that performed the passage.
    pub pid: ProcId,
    /// 0-based index among this process' completed spans.
    pub index: usize,
    /// What kind of span this was.
    pub kind: SpanKind,
    /// The counters accumulated strictly within the span.
    pub counters: Counters,
}

/// Per-process accounting state.
#[derive(Clone, Debug)]
pub struct ProcMetrics {
    /// Running totals over the whole execution.
    pub totals: Counters,
    /// Completed passages/operations, in order.
    pub completed: Vec<PassageStats>,
    /// Snapshot of `totals` at the start of the currently open span.
    open_snapshot: Option<(SpanKind, Counters)>,
}

impl ProcMetrics {
    fn new() -> Self {
        ProcMetrics {
            totals: Counters::default(),
            completed: Vec::new(),
            open_snapshot: None,
        }
    }

    /// Counters accumulated in the currently open span, if one is open.
    pub fn open_span(&self) -> Option<(SpanKind, Counters)> {
        self.open_snapshot
            .map(|(kind, snap)| (kind, self.totals - snap))
    }
}

/// Accounting for a whole machine run.
#[derive(Clone, Debug)]
pub struct Metrics {
    procs: Vec<ProcMetrics>,
}

impl Metrics {
    /// Fresh metrics for `n` processes.
    pub fn new(n: usize) -> Self {
        Metrics {
            procs: (0..n).map(|_| ProcMetrics::new()).collect(),
        }
    }

    /// Per-process metrics.
    pub fn proc(&self, pid: ProcId) -> &ProcMetrics {
        &self.procs[pid.index()]
    }

    /// Iterates over all per-process metrics in ID order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &ProcMetrics)> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, m)| (ProcId(i as u32), m))
    }

    pub(crate) fn proc_mut(&mut self, pid: ProcId) -> &mut Counters {
        &mut self.procs[pid.index()].totals
    }

    pub(crate) fn open_span(&mut self, pid: ProcId, kind: SpanKind) {
        let m = &mut self.procs[pid.index()];
        debug_assert!(m.open_snapshot.is_none(), "span already open for {pid}");
        m.open_snapshot = Some((kind, m.totals));
    }

    pub(crate) fn reset_proc(&mut self, pid: ProcId) {
        self.procs[pid.index()] = ProcMetrics::new();
    }

    /// Abandons the currently open span, if any, without recording it —
    /// a crashed passage never completes. No-op when no span is open.
    pub(crate) fn abort_span(&mut self, pid: ProcId) {
        self.procs[pid.index()].open_snapshot = None;
    }

    pub(crate) fn close_span(&mut self, pid: ProcId) {
        let m = &mut self.procs[pid.index()];
        let (kind, snap) = m
            .open_snapshot
            .take()
            .expect("closing a span that was never opened");
        let stats = PassageStats {
            pid,
            index: m.completed.len(),
            kind,
            counters: m.totals - snap,
        };
        m.completed.push(stats);
    }

    /// Sums a counter across all completed spans of all processes, using
    /// the supplied projection.
    pub fn sum_completed(&self, f: impl Fn(&PassageStats) -> u64) -> u64 {
        self.procs
            .iter()
            .flat_map(|m| m.completed.iter())
            .map(f)
            .sum()
    }

    /// The maximum of a projected counter across completed spans, if any
    /// span completed.
    pub fn max_completed(&self, f: impl Fn(&PassageStats) -> u64) -> Option<u64> {
        self.procs
            .iter()
            .flat_map(|m| m.completed.iter())
            .map(f)
            .max()
    }

    /// The distribution of a projected counter over all completed spans —
    /// e.g. `metrics.histogram_of(|p| p.counters.rmr_dsm)` is the
    /// per-passage DSM-RMR histogram the telemetry layer exports.
    pub fn histogram_of(&self, f: impl Fn(&PassageStats) -> u64) -> Histogram {
        let mut h = Histogram::new();
        for m in &self.procs {
            for p in &m.completed {
                h.record(f(p));
            }
        }
        h
    }
}

/// Number of buckets in a [`Histogram`]: one for zero, one per
/// power-of-two magnitude up to `2^16`, and one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 18;

/// A power-of-two-bucketed distribution of per-passage counter values.
///
/// Bucket 0 holds exact zeros; bucket `i` (for `1 <= i <= 16`) holds
/// values in `[2^(i-1), 2^i)`; bucket 17 holds everything `>= 2^16`.
/// Passage counters in this codebase (RMRs, fences, critical events) are
/// small — the paper's bounds are `O(log n / log log n)` per passage — so
/// the fixed range is generous, and the overflow bucket keeps the type
/// total. Converts to the probe-facing [`tpa_obs::HistogramRecord`] via
/// [`Histogram::to_record`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let bits = 64 - value.leading_zeros() as usize;
            bits.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// A human-readable label for bucket `i` (`"0"`, `"[1,2)"`,
    /// `"[2,4)"`, …, `">=65536"`).
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_owned(),
            x if x == HISTOGRAM_BUCKETS - 1 => format!(">={}", 1u64 << (HISTOGRAM_BUCKETS - 2)),
            _ => format!("[{},{})", 1u64 << (i - 1), 1u64 << i),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Converts into the probe-facing record, labelling each non-empty
    /// bucket (empty buckets are elided — the labels carry the ranges).
    pub fn to_record(&self, label: &str) -> tpa_obs::HistogramRecord {
        tpa_obs::HistogramRecord {
            label: label.to_owned(),
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Self::bucket_label(i), c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_subtract_componentwise() {
        let a = Counters {
            events: 10,
            rmr_dsm: 5,
            rmr_wt: 4,
            rmr_wb: 3,
            critical: 2,
            fences: 1,
        };
        let b = Counters {
            events: 4,
            rmr_dsm: 2,
            rmr_wt: 2,
            rmr_wb: 1,
            critical: 1,
            fences: 0,
        };
        let d = a - b;
        assert_eq!(d.events, 6);
        assert_eq!(d.rmr_dsm, 3);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn span_accounting_diffs_totals() {
        let mut m = Metrics::new(1);
        m.proc_mut(ProcId(0)).events = 3;
        m.open_span(ProcId(0), SpanKind::Passage);
        m.proc_mut(ProcId(0)).events = 10;
        m.proc_mut(ProcId(0)).fences = 2;
        let (kind, open) = m.proc(ProcId(0)).open_span().unwrap();
        assert_eq!(kind, SpanKind::Passage);
        assert_eq!(open.events, 7);
        m.close_span(ProcId(0));
        let p = &m.proc(ProcId(0)).completed[0];
        assert_eq!(p.counters.events, 7);
        assert_eq!(p.counters.fences, 2);
        assert_eq!(p.index, 0);
        assert!(m.proc(ProcId(0)).open_span().is_none());
    }

    #[test]
    fn sum_and_max_over_completed() {
        let mut m = Metrics::new(2);
        for pid in [ProcId(0), ProcId(1)] {
            m.open_span(pid, SpanKind::Passage);
            m.proc_mut(pid).fences = 1 + pid.0 as u64;
            m.close_span(pid);
        }
        assert_eq!(m.sum_completed(|p| p.counters.fences), 3);
        assert_eq!(m.max_completed(|p| p.counters.fences), Some(2));
    }

    #[test]
    fn counters_subtraction_covers_every_field() {
        let a = Counters {
            events: 100,
            rmr_dsm: 90,
            rmr_wt: 80,
            rmr_wb: 70,
            critical: 60,
            fences: 50,
        };
        let d = a - a;
        assert_eq!(d, Counters::default(), "x - x must be all-zero");
        let z = a - Counters::default();
        assert_eq!(z, a, "x - 0 must be x, field by field");
    }

    #[test]
    fn operation_spans_tag_the_op_code() {
        // Invoke(op) → Return spans are accounted like passages but keep
        // the operation code; a Passage span must not equal them.
        let mut m = Metrics::new(1);
        m.open_span(ProcId(0), SpanKind::Operation(7));
        m.proc_mut(ProcId(0)).events = 4;
        m.close_span(ProcId(0));
        let p = &m.proc(ProcId(0)).completed[0];
        assert_eq!(p.kind, SpanKind::Operation(7));
        assert_ne!(p.kind, SpanKind::Passage);
        assert_ne!(p.kind, SpanKind::Operation(8));
        assert_eq!(p.counters.events, 4);
    }

    #[test]
    fn span_boundaries_are_exclusive_of_surrounding_work() {
        // Work before Enter and after Exit must not leak into the span.
        let mut m = Metrics::new(1);
        m.proc_mut(ProcId(0)).critical = 5; // pre-span
        m.open_span(ProcId(0), SpanKind::Passage);
        m.proc_mut(ProcId(0)).critical = 8; // +3 inside
        m.close_span(ProcId(0));
        m.proc_mut(ProcId(0)).critical = 20; // post-span
        let p = &m.proc(ProcId(0)).completed[0];
        assert_eq!(p.counters.critical, 3);
        // A second span starts from the *current* totals.
        m.open_span(ProcId(0), SpanKind::Passage);
        m.proc_mut(ProcId(0)).critical = 21;
        m.close_span(ProcId(0));
        assert_eq!(m.proc(ProcId(0)).completed[1].counters.critical, 1);
        assert_eq!(m.proc(ProcId(0)).completed[1].index, 1);
    }

    #[test]
    fn histogram_bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        // Boundary of the top regular bucket [2^15, 2^16).
        assert_eq!(Histogram::bucket_index(65535), 16);
        // Overflow bucket.
        assert_eq!(Histogram::bucket_index(65536), 17);
        assert_eq!(Histogram::bucket_index(u64::MAX), 17);
    }

    #[test]
    fn histogram_labels_match_indexing() {
        assert_eq!(Histogram::bucket_label(0), "0");
        assert_eq!(Histogram::bucket_label(1), "[1,2)");
        assert_eq!(Histogram::bucket_label(3), "[4,8)");
        assert_eq!(Histogram::bucket_label(16), "[32768,65536)");
        assert_eq!(Histogram::bucket_label(17), ">=65536");
        // Every bucket's lower edge indexes back to that bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(1 << (i - 1)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_record_elides_empty_buckets() {
        let mut h = Histogram::new();
        for v in [0, 0, 1, 5, 70000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 70006);
        assert_eq!(h.max(), 70000);
        let r = h.to_record("rmr_dsm");
        assert_eq!(r.label, "rmr_dsm");
        assert_eq!(r.count, 5);
        assert_eq!(
            r.buckets,
            vec![
                ("0".to_owned(), 2),
                ("[1,2)".to_owned(), 1),
                ("[4,8)".to_owned(), 1),
                (">=65536".to_owned(), 1),
            ]
        );
    }

    #[test]
    fn histogram_of_projects_completed_spans() {
        let mut m = Metrics::new(2);
        for (pid, rmrs) in [(ProcId(0), 2u64), (ProcId(1), 9)] {
            m.open_span(pid, SpanKind::Passage);
            m.proc_mut(pid).rmr_dsm = rmrs;
            m.close_span(pid);
        }
        let h = m.histogram_of(|p| p.counters.rmr_dsm);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 11);
        assert_eq!(h.max(), 9);
        assert_eq!(h.buckets()[Histogram::bucket_index(2)], 1);
        assert_eq!(h.buckets()[Histogram::bucket_index(9)], 1);
    }
}

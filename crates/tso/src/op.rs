//! Program-level operations and their outcomes.
//!
//! A [`crate::Program`] communicates with the [`crate::Machine`] through a
//! peek/apply protocol: [`Program::peek`](crate::Program::peek) exposes the
//! next operation the process wants to perform, and once the machine has
//! executed it, [`Program::apply`](crate::Program::apply) delivers the
//! [`Outcome`] so the program can advance its local state.

use crate::ids::{Value, VarId};

/// The next operation a program wants to perform.
///
/// `Op` is the *program-order* view; how an operation maps to shared-memory
/// events is decided by the TSO machine (e.g. a [`Op::Write`] only issues
/// into the write buffer, and a [`Op::Fence`] expands into a `BeginFence`,
/// a run of write commits, and an `EndFence`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Read a shared variable. Served from the process' own write buffer
    /// when it holds a pending write to the variable, otherwise from memory.
    Read(VarId),
    /// Write a value to a shared variable. The write is placed in the write
    /// buffer (replacing, in place, any pending write to the same variable)
    /// and becomes visible only when committed.
    Write(VarId, Value),
    /// Atomic compare-and-swap. Comparison primitives carry fence semantics
    /// on TSO hardware (e.g. x86 `LOCK CMPXCHG` drains the store buffer), so
    /// the machine drains the issuer's write buffer before executing the
    /// operation and accounts one completed fence for it.
    Cas {
        /// Variable operated on.
        var: VarId,
        /// Value the variable must hold for the swap to succeed.
        expected: Value,
        /// Value stored on success.
        new: Value,
    },
    /// Memory fence: force all buffered writes to commit, in issue order.
    Fence,
    /// Transition from the non-critical section to the entry section.
    Enter,
    /// Transition from the entry section to the exit section (the critical
    /// section itself is instantaneous, as in the paper).
    Cs,
    /// Transition from the exit section back to the non-critical section,
    /// completing a passage.
    Exit,
    /// Begin an operation on an implemented object (used by the object
    /// programs of Section 5; a no-op on shared memory).
    Invoke {
        /// Operation code, algorithm-defined (e.g. 0 = `fetch&increment`).
        op: u32,
        /// Operation argument (e.g. the value to enqueue).
        arg: Value,
    },
    /// Complete an operation on an implemented object with a result value.
    Return(Value),
    /// The program has terminated; the process must not be scheduled again.
    Halt,
}

impl Op {
    /// Returns `true` for the three mutual-exclusion transition operations.
    pub fn is_transition(self) -> bool {
        matches!(self, Op::Enter | Op::Cs | Op::Exit)
    }

    /// Returns the variable this operation touches, if any.
    pub fn var(self) -> Option<VarId> {
        match self {
            Op::Read(v) | Op::Write(v, _) | Op::Cas { var: v, .. } => Some(v),
            _ => None,
        }
    }
}

/// What the machine reports back to a program after executing its operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The value returned by a [`Op::Read`].
    ReadValue(Value),
    /// A [`Op::Write`] was issued into the write buffer.
    WriteIssued,
    /// Result of a [`Op::Cas`].
    CasResult {
        /// Whether the swap took place.
        success: bool,
        /// The value observed in the variable (the pre-swap value).
        observed: Value,
    },
    /// A [`Op::Fence`] has completed (the `EndFence` event executed).
    FenceDone,
    /// A transition, invoke or return event executed.
    Progressed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_classification() {
        assert!(Op::Enter.is_transition());
        assert!(Op::Cs.is_transition());
        assert!(Op::Exit.is_transition());
        assert!(!Op::Fence.is_transition());
        assert!(!Op::Read(VarId(0)).is_transition());
    }

    #[test]
    fn op_var_extraction() {
        assert_eq!(Op::Read(VarId(4)).var(), Some(VarId(4)));
        assert_eq!(Op::Write(VarId(2), 9).var(), Some(VarId(2)));
        assert_eq!(
            Op::Cas {
                var: VarId(1),
                expected: 0,
                new: 1
            }
            .var(),
            Some(VarId(1))
        );
        assert_eq!(Op::Fence.var(), None);
        assert_eq!(Op::Halt.var(), None);
    }
}

//! Human-readable execution rendering.
//!
//! Turns an event log into a per-process timeline (one column per
//! process, one row per event) or a compact annotated listing — the
//! format used by the `adversary_trace` example and invaluable when
//! debugging algorithms or the construction.

use std::fmt::Write as _;

use crate::event::{Event, EventKind, ReadSource};
use crate::ids::ProcId;

fn short(kind: &EventKind, critical: bool) -> String {
    let c = if critical { "!" } else { "" };
    match kind {
        EventKind::Read {
            var,
            value,
            source: ReadSource::Memory,
        } => {
            format!("r{c}({var})={value}")
        }
        EventKind::Read {
            var,
            value,
            source: ReadSource::Buffer,
        } => {
            format!("rb({var})={value}")
        }
        EventKind::IssueWrite { var, value } => format!("w({var}:={value})"),
        EventKind::CommitWrite { var, value } => format!("C{c}({var}:={value})"),
        EventKind::BeginFence => "[fence".to_owned(),
        EventKind::EndFence => "fence]".to_owned(),
        EventKind::Cas {
            var, new, success, ..
        } => {
            format!("cas{c}({var}:={new}){}", if *success { "+" } else { "-" })
        }
        EventKind::Enter => "ENTER".to_owned(),
        EventKind::Cs => "**CS**".to_owned(),
        EventKind::Exit => "EXIT".to_owned(),
        EventKind::Invoke { op, arg } => format!("inv({op},{arg})"),
        EventKind::Return { value } => format!("ret({value})"),
    }
}

/// Renders the log as a timeline: one column per process in `0..n`, one
/// row per event, events placed in their process' column.
pub fn timeline(log: &[Event], n: usize) -> String {
    let width = 14usize;
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>6} ", "seq");
    for i in 0..n {
        let _ = write!(out, "{:^width$}", format!("p{i}"));
    }
    out.push('\n');
    let _ = write!(out, "{:>6} ", "");
    for _ in 0..n {
        let _ = write!(out, "{:^width$}", "-".repeat(width - 2));
    }
    out.push('\n');
    for e in log {
        let _ = write!(out, "{:>6} ", e.seq);
        for i in 0..n {
            if e.pid == ProcId(i as u32) {
                let _ = write!(out, "{:^width$}", short(&e.kind, e.critical));
            } else {
                let _ = write!(out, "{:^width$}", "");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the log as a compact one-event-per-line listing.
pub fn listing(log: &[Event]) -> String {
    let mut out = String::new();
    for e in log {
        let _ = writeln!(out, "{e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Directive, Machine};
    use crate::scripted::{Instr, ScriptSystem};

    fn sample_machine() -> Machine {
        let sys = ScriptSystem::new(2, 1, |pid| {
            vec![
                Instr::Enter,
                Instr::Write {
                    var: 0,
                    value: u64::from(pid.0) + 1,
                },
                Instr::Fence,
                Instr::Cs,
                Instr::Exit,
                Instr::Halt,
            ]
        });
        let mut m = Machine::new(&sys);
        m.run_solo(ProcId(0), 1, 100).unwrap();
        m.run_solo(ProcId(1), 1, 100).unwrap();
        m
    }

    #[test]
    fn timeline_has_one_row_per_event_plus_header() {
        let m = sample_machine();
        let t = timeline(m.log(), 2);
        assert_eq!(t.lines().count(), m.log().len() + 2);
        assert!(t.contains("ENTER"));
        assert!(t.contains("**CS**"));
        assert!(t.contains("[fence"));
    }

    #[test]
    fn listing_is_one_line_per_event() {
        let m = sample_machine();
        let l = listing(m.log());
        assert_eq!(l.lines().count(), m.log().len());
    }

    #[test]
    fn critical_events_are_marked() {
        let sys = ScriptSystem::new(1, 1, |_| vec![Instr::Read { var: 0, reg: 0 }, Instr::Halt]);
        let mut m = Machine::new(&sys);
        m.step(Directive::Issue(ProcId(0))).unwrap();
        let t = timeline(m.log(), 1);
        assert!(t.contains("r!(v0)=0"), "{t}");
    }

    #[test]
    fn cas_success_and_failure_render_distinctly() {
        let sys = ScriptSystem::new(1, 1, |_| {
            vec![
                Instr::Cas {
                    var: 0,
                    expected: 0,
                    new: 1,
                    success_reg: 0,
                },
                Instr::Cas {
                    var: 0,
                    expected: 0,
                    new: 2,
                    success_reg: 1,
                },
                Instr::Halt,
            ]
        });
        let mut m = Machine::new(&sys);
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(0))).unwrap();
        let l = listing(m.log());
        assert!(l.contains("true"));
        assert!(l.contains("false"));
        let t = timeline(m.log(), 1);
        assert!(t.contains("+"), "{t}");
        assert!(t.contains("-"), "{t}");
    }
}

//! Human-readable execution rendering.
//!
//! Turns an event log into a per-process timeline (one column per
//! process, one row per event) or a compact annotated listing — the
//! format used by the `adversary_trace` example and invaluable when
//! debugging algorithms or the construction.
//!
//! Both renderers (and [`Event`]'s `Display`) consume the structured
//! [`SimStep`] shape the telemetry layer emits, so there is exactly one
//! formatting path whether an event arrives from the in-machine log or
//! from a probe: [`compact`] for timeline cells, [`verbose`] for
//! one-line listings.

use std::fmt::Write as _;

use tpa_obs::{SimKind, SimStep};

use crate::event::Event;
use crate::ids::ProcId;

/// The compact cell form of one step (`r!(v0)=0`, `C(v1:=2)`,
/// `[fence`, …) — what [`timeline`] puts in a process column.
pub fn compact(step: &SimStep) -> String {
    let c = if step.critical { "!" } else { "" };
    match step.kind {
        SimKind::Read {
            var,
            value,
            from_buffer: false,
        } => format!("r{c}(v{var})={value}"),
        SimKind::Read {
            var,
            value,
            from_buffer: true,
        } => format!("rb(v{var})={value}"),
        SimKind::IssueWrite { var, value } => format!("w(v{var}:={value})"),
        SimKind::CommitWrite { var, value } => format!("C{c}(v{var}:={value})"),
        SimKind::BeginFence => "[fence".to_owned(),
        SimKind::EndFence => "fence]".to_owned(),
        SimKind::Cas {
            var, new, success, ..
        } => {
            format!("cas{c}(v{var}:={new}){}", if success { "+" } else { "-" })
        }
        SimKind::Enter => "ENTER".to_owned(),
        SimKind::Cs => "**CS**".to_owned(),
        SimKind::Exit => "EXIT".to_owned(),
        SimKind::Invoke { op, arg } => format!("inv({op},{arg})"),
        SimKind::Return { value } => format!("ret({value})"),
        SimKind::Crash { lost } => format!("CRASH({lost})"),
        SimKind::Recover => "RECOVER".to_owned(),
    }
}

/// The full one-line form of one step, with sequence number and process
/// (`[3] p1 read!(v0)=5 <mem>`) — what [`listing`] and `Display for
/// Event` print.
pub fn verbose(step: &SimStep) -> String {
    let seq = step.seq;
    let pid = step.pid;
    let c = if step.critical { "!" } else { "" };
    match step.kind {
        SimKind::Read {
            var,
            value,
            from_buffer,
        } => {
            let src = if from_buffer { "buf" } else { "mem" };
            format!("[{seq}] p{pid} read{c}(v{var})={value} <{src}>")
        }
        SimKind::IssueWrite { var, value } => format!("[{seq}] p{pid} issue(v{var}:={value})"),
        SimKind::CommitWrite { var, value } => {
            format!("[{seq}] p{pid} commit{c}(v{var}:={value})")
        }
        SimKind::BeginFence => format!("[{seq}] p{pid} begin-fence"),
        SimKind::EndFence => format!("[{seq}] p{pid} end-fence"),
        SimKind::Cas {
            var,
            expected,
            new,
            success,
            observed,
        } => {
            format!("[{seq}] p{pid} cas{c}(v{var}: {expected}->{new}) = {success} (saw {observed})")
        }
        SimKind::Enter => format!("[{seq}] p{pid} ENTER"),
        SimKind::Cs => format!("[{seq}] p{pid} CS"),
        SimKind::Exit => format!("[{seq}] p{pid} EXIT"),
        SimKind::Invoke { op, arg } => format!("[{seq}] p{pid} invoke(op{op}, {arg})"),
        SimKind::Return { value } => format!("[{seq}] p{pid} return({value})"),
        SimKind::Crash { lost } => {
            format!("[{seq}] p{pid} CRASH ({lost} buffered writes lost)")
        }
        SimKind::Recover => format!("[{seq}] p{pid} RECOVER"),
    }
}

/// Renders the log as a timeline: one column per process in `0..n`, one
/// row per event, events placed in their process' column.
pub fn timeline(log: &[Event], n: usize) -> String {
    let width = 14usize;
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>6} ", "seq");
    for i in 0..n {
        let _ = write!(out, "{:^width$}", format!("p{i}"));
    }
    out.push('\n');
    let _ = write!(out, "{:>6} ", "");
    for _ in 0..n {
        let _ = write!(out, "{:^width$}", "-".repeat(width - 2));
    }
    out.push('\n');
    for e in log {
        let _ = write!(out, "{:>6} ", e.seq);
        for i in 0..n {
            if e.pid == ProcId(i as u32) {
                let _ = write!(out, "{:^width$}", compact(&e.probe_step(0)));
            } else {
                let _ = write!(out, "{:^width$}", "");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the log as a compact one-event-per-line listing.
pub fn listing(log: &[Event]) -> String {
    let mut out = String::new();
    for e in log {
        let _ = writeln!(out, "{}", verbose(&e.probe_step(0)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Directive, Machine};
    use crate::scripted::{Instr, ScriptSystem};

    fn sample_machine() -> Machine {
        let sys = ScriptSystem::new(2, 1, |pid| {
            vec![
                Instr::Enter,
                Instr::Write {
                    var: 0,
                    value: u64::from(pid.0) + 1,
                },
                Instr::Fence,
                Instr::Cs,
                Instr::Exit,
                Instr::Halt,
            ]
        });
        let mut m = Machine::new(&sys);
        m.run_solo(ProcId(0), 1, 100).unwrap();
        m.run_solo(ProcId(1), 1, 100).unwrap();
        m
    }

    #[test]
    fn timeline_has_one_row_per_event_plus_header() {
        let m = sample_machine();
        let t = timeline(m.log(), 2);
        assert_eq!(t.lines().count(), m.log().len() + 2);
        assert!(t.contains("ENTER"));
        assert!(t.contains("**CS**"));
        assert!(t.contains("[fence"));
    }

    #[test]
    fn listing_is_one_line_per_event() {
        let m = sample_machine();
        let l = listing(m.log());
        assert_eq!(l.lines().count(), m.log().len());
    }

    #[test]
    fn listing_and_display_agree() {
        // One formatting path: `Display for Event` and the listing line
        // must be the same string.
        let m = sample_machine();
        for e in m.log() {
            assert_eq!(e.to_string(), verbose(&e.probe_step(0)));
        }
    }

    #[test]
    fn critical_events_are_marked() {
        let sys = ScriptSystem::new(1, 1, |_| vec![Instr::Read { var: 0, reg: 0 }, Instr::Halt]);
        let mut m = Machine::new(&sys);
        m.step(Directive::Issue(ProcId(0))).unwrap();
        let t = timeline(m.log(), 1);
        assert!(t.contains("r!(v0)=0"), "{t}");
    }

    #[test]
    fn cas_success_and_failure_render_distinctly() {
        let sys = ScriptSystem::new(1, 1, |_| {
            vec![
                Instr::Cas {
                    var: 0,
                    expected: 0,
                    new: 1,
                    success_reg: 0,
                },
                Instr::Cas {
                    var: 0,
                    expected: 0,
                    new: 2,
                    success_reg: 1,
                },
                Instr::Halt,
            ]
        });
        let mut m = Machine::new(&sys);
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(0))).unwrap();
        let l = listing(m.log());
        assert!(l.contains("true"));
        assert!(l.contains("false"));
        let t = timeline(m.log(), 1);
        assert!(t.contains("+"), "{t}");
        assert!(t.contains("-"), "{t}");
    }
}

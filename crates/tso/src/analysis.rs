//! Post-hoc execution analysis: contention gauges and event statistics.
//!
//! The paper distinguishes three contention measures for a passage `𝒫`
//! (Section 1):
//!
//! * **total contention** — processes that participate anywhere in the
//!   execution;
//! * **interval contention** — processes active at some point *during*
//!   `𝒫`;
//! * **point contention** — the maximum number of processes
//!   *simultaneously* active during `𝒫`.
//!
//! Adaptivity to point contention is the strongest promise (Kim–Anderson
//! is `O(min(k, log n))` for point contention `k`). These gauges are
//! computed here from an event log, so experiment tables can report the
//! contention an algorithm actually faced rather than the nominal `k`.

use std::collections::BTreeSet;

use crate::event::{Event, EventKind};
use crate::ids::ProcId;

/// One passage (or object operation) located in an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// The process performing the passage.
    pub pid: ProcId,
    /// Index of the `Enter`/`Invoke` event in the log.
    pub start: usize,
    /// Index of the matching `Exit`/`Return` event, if the passage
    /// completed.
    pub end: Option<usize>,
}

/// Contention measures of one passage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Contention {
    /// Distinct processes that were active at any point during the span
    /// (including the owner) — interval contention.
    pub interval: usize,
    /// Maximum number of simultaneously active processes during the span
    /// — point contention.
    pub point: usize,
    /// Distinct processes with any event anywhere in the execution —
    /// total contention (the measure Theorem 1 is stated in).
    pub total: usize,
}

fn is_start(kind: EventKind) -> bool {
    matches!(kind, EventKind::Enter | EventKind::Invoke { .. })
}

fn is_end(kind: EventKind) -> bool {
    matches!(kind, EventKind::Exit | EventKind::Return { .. })
}

/// Extracts every passage/operation span from a log, in start order.
/// Unfinished passages have `end: None`.
pub fn spans(log: &[Event]) -> Vec<Span> {
    let mut result: Vec<Span> = Vec::new();
    for e in log {
        if is_start(e.kind) {
            result.push(Span {
                pid: e.pid,
                start: e.seq,
                end: None,
            });
        } else if is_end(e.kind) {
            if let Some(open) = result
                .iter_mut()
                .rev()
                .find(|s| s.pid == e.pid && s.end.is_none())
            {
                open.end = Some(e.seq);
            }
        }
    }
    result
}

/// Computes the contention gauges for one span.
pub fn contention(log: &[Event], span: Span) -> Contention {
    let end = span.end.unwrap_or(log.len().saturating_sub(1));

    // Total contention: every process with any event in the execution.
    let total: BTreeSet<ProcId> = log.iter().map(|e| e.pid).collect();

    // Reconstruct the active set over time.
    let mut active: BTreeSet<ProcId> = BTreeSet::new();
    let mut interval: BTreeSet<ProcId> = BTreeSet::new();
    let mut point = 0usize;
    for e in log {
        if is_start(e.kind) {
            active.insert(e.pid);
        }
        let in_window = e.seq >= span.start && e.seq <= end;
        if in_window {
            for p in &active {
                interval.insert(*p);
            }
            point = point.max(active.len());
        }
        if is_end(e.kind) {
            active.remove(&e.pid);
        }
        if e.seq > end {
            break;
        }
    }

    Contention {
        interval: interval.len(),
        point,
        total: total.len(),
    }
}

/// Aggregate event statistics of an execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Total events.
    pub events: usize,
    /// Reads served from memory.
    pub memory_reads: usize,
    /// Reads served from the issuer's own buffer.
    pub buffer_reads: usize,
    /// Writes issued into buffers.
    pub issues: usize,
    /// Write commits.
    pub commits: usize,
    /// Completed fences (`EndFence`).
    pub fences: usize,
    /// CAS operations.
    pub cas: usize,
    /// Critical events.
    pub criticals: usize,
    /// Transition events (`Enter`/`CS`/`Exit`/`Invoke`/`Return`).
    pub transitions: usize,
}

/// Computes aggregate event statistics for a log.
pub fn event_stats(log: &[Event]) -> EventStats {
    let mut s = EventStats {
        events: log.len(),
        ..EventStats::default()
    };
    for e in log {
        match e.kind {
            EventKind::Read {
                source: crate::event::ReadSource::Memory,
                ..
            } => {
                s.memory_reads += 1;
            }
            EventKind::Read { .. } => s.buffer_reads += 1,
            EventKind::IssueWrite { .. } => s.issues += 1,
            EventKind::CommitWrite { .. } => s.commits += 1,
            EventKind::EndFence => s.fences += 1,
            EventKind::Cas { .. } => s.cas += 1,
            _ => {}
        }
        if e.critical {
            s.criticals += 1;
        }
        if e.is_transition() {
            s.transitions += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Directive, Machine};
    use crate::scripted::{Instr, ScriptSystem};

    /// p0's passage fully encloses p1's.
    fn nested_passages() -> Machine {
        let sys = ScriptSystem::new(3, 1, |_| {
            vec![Instr::Enter, Instr::Cs, Instr::Exit, Instr::Halt]
        });
        let mut m = Machine::new(&sys);
        let step = |m: &mut Machine, p: u32| m.step(Directive::Issue(ProcId(p))).unwrap();
        step(&mut m, 0); // p0 Enter
        step(&mut m, 1); // p1 Enter
        step(&mut m, 1); // p1 Cs
        step(&mut m, 1); // p1 Exit
        step(&mut m, 0); // p0 Cs
        step(&mut m, 0); // p0 Exit
                         // p2 never runs.
        m
    }

    #[test]
    fn spans_are_extracted_with_ends() {
        let m = nested_passages();
        let sp = spans(m.log());
        assert_eq!(sp.len(), 2);
        assert_eq!(sp[0].pid, ProcId(0));
        assert_eq!(sp[0].start, 0);
        assert_eq!(sp[0].end, Some(5));
        assert_eq!(sp[1].pid, ProcId(1));
        assert_eq!(sp[1].end, Some(3));
    }

    #[test]
    fn contention_gauges_nested() {
        let m = nested_passages();
        let sp = spans(m.log());
        let outer = contention(m.log(), sp[0]);
        assert_eq!(outer.interval, 2, "p1 was active during p0's passage");
        assert_eq!(outer.point, 2);
        assert_eq!(outer.total, 2, "p2 never issued an event");
        let inner = contention(m.log(), sp[1]);
        assert_eq!(inner.interval, 2);
        assert_eq!(inner.point, 2);
    }

    #[test]
    fn solo_passage_has_unit_contention() {
        let sys = ScriptSystem::new(2, 1, |_| {
            vec![Instr::Enter, Instr::Cs, Instr::Exit, Instr::Halt]
        });
        let mut m = Machine::new(&sys);
        for _ in 0..3 {
            m.step(Directive::Issue(ProcId(0))).unwrap();
        }
        let sp = spans(m.log());
        let c = contention(m.log(), sp[0]);
        assert_eq!(
            c,
            Contention {
                interval: 1,
                point: 1,
                total: 1
            }
        );
    }

    #[test]
    fn disjoint_passages_have_unit_point_contention() {
        let sys = ScriptSystem::new(2, 1, |_| {
            vec![Instr::Enter, Instr::Cs, Instr::Exit, Instr::Halt]
        });
        let mut m = Machine::new(&sys);
        for p in [0u32, 0, 0, 1, 1, 1] {
            m.step(Directive::Issue(ProcId(p))).unwrap();
        }
        let sp = spans(m.log());
        for s in sp {
            let c = contention(m.log(), s);
            assert_eq!(c.point, 1, "sequential passages never overlap");
            assert_eq!(c.interval, 1);
            assert_eq!(c.total, 2, "both participate in the execution");
        }
    }

    #[test]
    fn unfinished_span_extends_to_log_end() {
        let sys = ScriptSystem::new(2, 1, |_| {
            vec![Instr::Enter, Instr::Cs, Instr::Exit, Instr::Halt]
        });
        let mut m = Machine::new(&sys);
        m.step(Directive::Issue(ProcId(0))).unwrap(); // p0 Enter, never exits
        m.step(Directive::Issue(ProcId(1))).unwrap(); // p1 Enter
        let sp = spans(m.log());
        assert_eq!(sp[0].end, None);
        let c = contention(m.log(), sp[0]);
        assert_eq!(c.interval, 2);
    }

    #[test]
    fn event_stats_classify_all_kinds() {
        let sys = ScriptSystem::new(1, 2, |_| {
            vec![
                Instr::Enter,
                Instr::Write { var: 0, value: 1 },
                Instr::Read { var: 0, reg: 0 }, // buffer read
                Instr::Read { var: 1, reg: 1 }, // memory read (critical)
                Instr::Fence,
                Instr::Cas {
                    var: 1,
                    expected: 0,
                    new: 2,
                    success_reg: 2,
                },
                Instr::Cs,
                Instr::Exit,
                Instr::Halt,
            ]
        });
        let mut m = Machine::new(&sys);
        while m.peek_next(ProcId(0)) != crate::machine::NextEvent::Halted {
            m.step(Directive::Issue(ProcId(0))).unwrap();
        }
        let s = event_stats(m.log());
        assert_eq!(s.buffer_reads, 1);
        assert_eq!(s.memory_reads, 1);
        assert_eq!(s.issues, 1);
        assert_eq!(s.commits, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.cas, 1);
        assert_eq!(s.transitions, 3);
        assert!(s.criticals >= 2);
        assert_eq!(s.events, m.log().len());
    }
}

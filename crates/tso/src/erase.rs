//! Erasure of processes from an execution (`E^{-Y}`, Section 2).
//!
//! The lower-bound construction repeatedly *erases* sets of invisible
//! processes: all their events are removed from the execution. Lemma 1 of
//! the paper shows the result is again a valid execution provided no
//! remaining process is aware of an erased one.
//!
//! Operationally we erase by **filtered replay**: the schedule (directive
//! sequence) that produced the execution is filtered to drop the erased
//! processes' directives, and a fresh machine re-runs it. Because programs
//! are deterministic, every retained process re-executes its program; if
//! the erased set was indeed invisible, each retained process reads the
//! same values and produces the *identical* event subsequence — which the
//! returned [`EraseOutcome`] verifies, turning Lemma 1 into a runtime
//! check.

use std::collections::BTreeSet;

use crate::event::Event;
use crate::ids::ProcId;
use crate::machine::{Directive, Machine, StepError};
use crate::program::System;

/// Result of erasing a set of processes.
pub struct EraseOutcome {
    /// The machine after replaying the filtered schedule.
    pub machine: Machine,
    /// Per-process projection comparison: `true` iff every retained
    /// process executed the identical event sequence (kinds *and* values)
    /// in the erased execution — the conclusion of Lemma 1.
    pub projection_identical: bool,
    /// Weaker check: projections are pairwise congruent (same operations
    /// on the same variables, values may differ).
    pub projection_congruent: bool,
    /// `true` iff every retained event kept its criticality status (the
    /// IN3 condition of Definition 4).
    pub criticality_preserved: bool,
    /// First differing (original, replayed) event pair per the identical
    /// check, for diagnostics.
    pub first_mismatch: Option<(Event, Event)>,
}

/// Computes `E^{-Y}` by filtered replay and validates Lemma 1 / IN3.
///
/// `original` must be the machine whose recorded schedule produced `E`;
/// `system` must be the same system it was created from (the replay spawns
/// fresh programs from it).
///
/// # Errors
///
/// Propagates any [`StepError`] raised during replay. A replay error means
/// the erased set was *not* invisible (a retained process branched on a
/// value an erased process wrote), which the construction treats as a bug.
pub fn erase<S: System + ?Sized>(
    system: &S,
    original: &Machine,
    erased: &BTreeSet<ProcId>,
) -> Result<EraseOutcome, StepError> {
    let filtered: Vec<Directive> = original
        .schedule()
        .iter()
        .copied()
        .filter(|d| !erased.contains(&d.pid()))
        .collect();

    let mut machine = Machine::new(system);
    for d in filtered {
        machine.step(d)?;
    }

    // Compare per-process projections.
    let mut projection_identical = true;
    let mut projection_congruent = true;
    let mut criticality_preserved = true;
    let mut first_mismatch = None;

    let mut replay_iters: Vec<std::iter::Peekable<_>> = Vec::new();
    for i in 0..original.n() {
        let pid = ProcId(i as u32);
        let iter = machine
            .log()
            .iter()
            .filter(move |e| e.pid == pid)
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .peekable();
        replay_iters.push(iter);
    }

    for orig in original.log() {
        if erased.contains(&orig.pid) {
            continue;
        }
        match replay_iters[orig.pid.index()].next() {
            Some(replayed) => {
                if !orig.congruent(&replayed) {
                    projection_congruent = false;
                }
                if orig.kind != replayed.kind {
                    projection_identical = false;
                    if first_mismatch.is_none() {
                        first_mismatch = Some((*orig, replayed));
                    }
                }
                if orig.critical != replayed.critical {
                    criticality_preserved = false;
                }
            }
            None => {
                projection_identical = false;
                projection_congruent = false;
            }
        }
    }
    // Extra replayed events (should not happen with a filtered schedule of
    // the same length, but check anyway).
    for iter in &mut replay_iters {
        if iter.peek().is_some() {
            projection_identical = false;
            projection_congruent = false;
        }
    }

    Ok(EraseOutcome {
        machine,
        projection_identical,
        projection_congruent,
        criticality_preserved,
        first_mismatch,
    })
}

/// Projects an event log onto one process (`E | p`).
pub fn project(log: &[Event], p: ProcId) -> Vec<Event> {
    log.iter().filter(|e| e.pid == p).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Directive;
    use crate::scripted::{Instr, ScriptSystem};

    /// Three processes; p2 never observes p0/p1 (disjoint variables).
    fn independent_system() -> ScriptSystem {
        ScriptSystem::new(3, 3, |pid| {
            let v = pid.0;
            vec![
                Instr::Write { var: v, value: 1 },
                Instr::Fence,
                Instr::Read { var: v, reg: 0 },
                Instr::Halt,
            ]
        })
    }

    fn run_all(sys: &ScriptSystem) -> Machine {
        let mut m = Machine::new(sys);
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..m.n() {
                let p = ProcId(i as u32);
                if m.peek_next(p) != crate::machine::NextEvent::Halted {
                    m.step(Directive::Issue(p)).unwrap();
                    progress = true;
                }
            }
        }
        m
    }

    #[test]
    fn erasing_invisible_processes_preserves_projections() {
        let sys = independent_system();
        let m = run_all(&sys);
        let erased: BTreeSet<ProcId> = [ProcId(1)].into_iter().collect();
        let out = erase(&sys, &m, &erased).unwrap();
        assert!(
            out.projection_identical,
            "mismatch: {:?}",
            out.first_mismatch
        );
        assert!(out.criticality_preserved);
        assert_eq!(
            out.machine.log().len(),
            m.log().len() - project(m.log(), ProcId(1)).len()
        );
    }

    #[test]
    fn erasing_everyone_leaves_empty_execution() {
        let sys = independent_system();
        let m = run_all(&sys);
        let erased: BTreeSet<ProcId> = (0..3).map(ProcId).collect();
        let out = erase(&sys, &m, &erased).unwrap();
        assert!(out.machine.log().is_empty());
        assert!(out.projection_identical);
    }

    #[test]
    fn erasing_a_visible_process_is_detected() {
        // p1 reads what p0 committed and branches on it; erasing p0 changes
        // p1's value.
        let sys = ScriptSystem::new(2, 1, |pid| {
            if pid.0 == 0 {
                vec![Instr::Write { var: 0, value: 1 }, Instr::Fence, Instr::Halt]
            } else {
                vec![Instr::Read { var: 0, reg: 0 }, Instr::Halt]
            }
        });
        let mut m = Machine::new(&sys);
        // p0 commits, then p1 reads 1.
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(0))).unwrap();
        m.step(Directive::Issue(ProcId(1))).unwrap();
        assert!(m.awareness(ProcId(1)).contains(ProcId(0)));

        let erased: BTreeSet<ProcId> = [ProcId(0)].into_iter().collect();
        let out = erase(&sys, &m, &erased).unwrap();
        // The replayed read returns 0 instead of 1: congruent but not
        // identical.
        assert!(!out.projection_identical);
        assert!(out.projection_congruent);
    }

    #[test]
    fn fact1_composition_of_erasures() {
        // (E^{-Y})^{-Z} == E^{-(Y ∪ Z)} — Fact 1(2), checked on schedules.
        let sys = independent_system();
        let m = run_all(&sys);
        let y: BTreeSet<ProcId> = [ProcId(0)].into_iter().collect();
        let z: BTreeSet<ProcId> = [ProcId(2)].into_iter().collect();
        let yz: BTreeSet<ProcId> = y.union(&z).copied().collect();

        let step1 = erase(&sys, &m, &y).unwrap();
        let step2 = erase(&sys, &step1.machine, &z).unwrap();
        let direct = erase(&sys, &m, &yz).unwrap();
        let a: Vec<_> = step2
            .machine
            .log()
            .iter()
            .map(|e| (e.pid, e.kind))
            .collect();
        let b: Vec<_> = direct
            .machine
            .log()
            .iter()
            .map(|e| (e.pid, e.kind))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn project_returns_only_that_process() {
        let sys = independent_system();
        let m = run_all(&sys);
        let proj = project(m.log(), ProcId(2));
        assert!(proj.iter().all(|e| e.pid == ProcId(2)));
        assert!(!proj.is_empty());
    }
}

//! Process-identifier permutations and the symmetry group of a system.
//!
//! A pid-symmetric system looks the same after renaming its processes: if
//! every program differs only in its pid, any permutation `π` of
//! `{0..n-1}` maps a reachable state to a reachable state, and the two
//! states have identical futures modulo the same renaming. The exhaustive
//! checker exploits this by caching states under a *canonical* key — the
//! minimum of the state fingerprint over all valid renamings — which
//! collapses each orbit of up to `n!` states to one cache entry.
//!
//! Renaming touches more than the per-process components: pid-indexed
//! variable arrays permute their *indices* (`flag[i] → flag[π(i)]`) and
//! pid-valued variables permute their *contents* (`turn = i → turn =
//! π(i)`). [`VarSpec`] records both facts (see
//! [`VarSpecBuilder::mark_pid_indexed`] and
//! [`VarSpecBuilder::mark_pid_valued`]); [`SymmetryGroup::for_spec`] turns
//! them into one variable-relabeling table per permutation, rejecting any
//! permutation the declared DSM ownership is not equivariant under.
//!
//! Soundness note: a permutation may be *invalid for a particular state*
//! (e.g. a scan in pid order whose prefix is not preserved, or an
//! unwritten pid-valued variable whose initial value the permutation
//! moves). Validity is intrinsic to the state, so every member of an
//! orbit agrees on which renamings apply — an invalid permutation only
//! loses reduction, never soundness — and the identity is always valid.

use crate::ids::{ProcId, Value, VarId};
use crate::machine::Directive;
use crate::vars::VarSpec;

/// A permutation of the process identifiers `{0..n-1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// The identity on `n` processes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n as u32).collect(),
        }
    }

    /// The transposition swapping `a` and `b` on `n` processes.
    pub fn transposition(n: usize, a: usize, b: usize) -> Self {
        let mut p = Self::identity(n);
        p.map.swap(a, b);
        p
    }

    /// All `n!` permutations, identity first, in a deterministic order.
    pub fn all(n: usize) -> Vec<Permutation> {
        let mut out = Vec::new();
        let mut current: Vec<u32> = (0..n as u32).collect();
        // Lexicographic enumeration starting from the identity.
        loop {
            out.push(Permutation {
                map: current.clone(),
            });
            // Next lexicographic permutation, or stop.
            let Some(i) = (0..n.saturating_sub(1))
                .rev()
                .find(|&i| current[i] < current[i + 1])
            else {
                break;
            };
            let j = (i + 1..n).rev().find(|&j| current[j] > current[i]).unwrap();
            current.swap(i, j);
            current[i + 1..].reverse();
        }
        out
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// Is this the identity?
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &m)| i as u32 == m)
    }

    /// `π(p)`.
    #[inline]
    pub fn apply(&self, p: ProcId) -> ProcId {
        ProcId(self.map[p.index()])
    }

    /// `π(i)` on a raw pid index (panics if `i >= n`).
    #[inline]
    pub fn apply_index(&self, i: usize) -> usize {
        self.map[i] as usize
    }

    /// Maps a zero-based pid-valued datum: `v ↦ π(v)`, or `None` when `v`
    /// is outside `{0..n-1}` (the renaming cannot express it).
    #[inline]
    pub fn map_value_zero_based(&self, v: Value) -> Option<Value> {
        self.map.get(v as usize).map(|&m| m as Value)
    }

    /// Maps a one-based pid-valued datum with `0` as the "no process"
    /// sentinel: `0 ↦ 0`, `v ↦ π(v-1)+1`, or `None` when `v > n`.
    #[inline]
    pub fn map_value_one_based(&self, v: Value) -> Option<Value> {
        if v == 0 {
            return Some(0);
        }
        self.map.get(v as usize - 1).map(|&m| m as Value + 1)
    }

    /// Does `π` map `{0..j-1}` onto `{0..π(j)-1}`? This is the validity
    /// condition for a program scanning *all* processes in pid order that
    /// has completed the prefix below `j`: the renamed program must have
    /// completed exactly the prefix below `π(j)`.
    pub fn maps_prefix(&self, j: usize) -> bool {
        debug_assert!(self.n() <= 64);
        let mut image = 0u64;
        for k in 0..j {
            image |= 1u64 << self.map[k];
        }
        image == (1u64 << self.map[j]) - 1
    }

    /// Like [`Permutation::maps_prefix`], for a scan that skips the
    /// scanner's own pid `me`: does `π` map `{k < j, k ≠ me}` onto
    /// `{k < π(j), k ≠ π(me)}`?
    pub fn maps_scan_prefix(&self, j: usize, me: usize) -> bool {
        debug_assert!(self.n() <= 64);
        let mut image = 0u64;
        for k in 0..j {
            if k != me {
                image |= 1u64 << self.map[k];
            }
        }
        let mut want = (1u64 << self.map[j]) - 1;
        let pme = self.map[me];
        if pme < self.map[j] {
            want &= !(1u64 << pme);
        }
        image == want
    }
}

/// The usable symmetry group of a system: every process permutation the
/// declared variable layout is equivariant under, each paired with its
/// induced variable relabeling. Built once per search by
/// [`SymmetryGroup::for_spec`]; consumed by
/// [`crate::Machine::canonical_state_key`].
#[derive(Clone, Debug)]
pub struct SymmetryGroup {
    n: usize,
    perms: Vec<Permutation>,
    var_maps: Vec<Vec<u32>>,
}

/// Permutations are enumerated eagerly (`n!` of them), so refuse to build
/// a group past this bound — reduction at such widths would be paid for
/// in canonicalisation time anyway.
const MAX_SYMMETRY_N: usize = 6;

impl SymmetryGroup {
    /// Builds the group for a spec and process count. Keeps exactly the
    /// permutations whose induced variable relabeling respects the
    /// declared DSM ownership (`owner(π·v) = π(owner(v))`); the result is
    /// a subgroup, so canonicalisation stays orbit-consistent. The
    /// identity (index 0) is always present.
    pub fn for_spec(spec: &VarSpec, n: usize) -> SymmetryGroup {
        let perms = if n <= MAX_SYMMETRY_N {
            Permutation::all(n)
        } else {
            vec![Permutation::identity(n)]
        };
        let mut kept = Vec::new();
        let mut var_maps = Vec::new();
        for p in perms {
            if let Some(map) = Self::var_map_for(spec, n, &p) {
                kept.push(p);
                var_maps.push(map);
            }
        }
        debug_assert!(kept[0].is_identity());
        SymmetryGroup {
            n,
            perms: kept,
            var_maps,
        }
    }

    /// The variable relabeling induced by `p`: pid-indexed groups permute
    /// their elements, everything else stays put. `None` when ownership
    /// is not equivariant under `p`.
    fn var_map_for(spec: &VarSpec, n: usize, p: &Permutation) -> Option<Vec<u32>> {
        let count = spec.count();
        let mut map: Vec<u32> = (0..count as u32).collect();
        for &(base, len) in spec.pid_indexed_groups() {
            if len as usize != n {
                // A pid-indexed array must have one slot per process.
                if !p.is_identity() {
                    return None;
                }
                continue;
            }
            for i in 0..len as usize {
                map[base as usize + i] = base + p.apply_index(i) as u32;
            }
        }
        for (v, &image) in map.iter().enumerate() {
            let image = VarId(image);
            let want = spec
                .owner(VarId(v as u32))
                .map(|o| if o.index() < n { p.apply(o) } else { o });
            if spec.owner(image) != want {
                return None;
            }
        }
        Some(map)
    }

    /// Number of permutations kept (≥ 1; index 0 is the identity).
    #[allow(clippy::len_without_is_empty)] // never empty: identity always kept
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True when only the identity survived — no reduction available.
    pub fn is_trivial(&self) -> bool {
        self.perms.len() <= 1
    }

    /// Process count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `idx`-th permutation.
    pub fn perm(&self, idx: usize) -> &Permutation {
        &self.perms[idx]
    }

    /// The variable relabeling of the `idx`-th permutation.
    pub fn var_map(&self, idx: usize) -> &[u32] {
        &self.var_maps[idx]
    }

    /// Index of the transposition `(a b)` in this group, if kept.
    pub fn find_transposition(&self, a: usize, b: usize) -> Option<usize> {
        let t = Permutation::transposition(self.n, a, b);
        self.perms.iter().position(|p| *p == t)
    }

    /// Renames a scheduling directive under the `idx`-th permutation —
    /// how the checker relabels sleep sets into canonical coordinates.
    pub fn rename_directive(&self, idx: usize, d: Directive) -> Directive {
        let p = &self.perms[idx];
        match d {
            Directive::Issue(q) => Directive::Issue(p.apply(q)),
            Directive::Commit(q) => Directive::Commit(p.apply(q)),
            Directive::CommitVar(q, v) => {
                Directive::CommitVar(p.apply(q), VarId(self.var_maps[idx][v.index()]))
            }
            Directive::Crash(q) => Directive::Crash(p.apply(q)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_permutations_identity_first() {
        let all = Permutation::all(3);
        assert_eq!(all.len(), 6);
        assert!(all[0].is_identity());
        let mut seen: Vec<Vec<u32>> = all.iter().map(|p| p.map.clone()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn value_mapping_encodings() {
        let p = Permutation::transposition(3, 0, 2);
        assert_eq!(p.map_value_zero_based(0), Some(2));
        assert_eq!(p.map_value_zero_based(1), Some(1));
        assert_eq!(p.map_value_zero_based(3), None);
        assert_eq!(p.map_value_one_based(0), Some(0));
        assert_eq!(p.map_value_one_based(1), Some(3));
        assert_eq!(p.map_value_one_based(4), None);
    }

    #[test]
    fn prefix_conditions() {
        // π = (0 1) on 3 procs. At j=0 the scanner has completed nothing,
        // but the renamed scanner at π(0)=1 would imply slot 0 done —
        // invalid. At j=1 the completed set {0} maps to {1}, not {0} —
        // invalid. At j=2 the completed set {0,1} maps to itself — valid.
        let p = Permutation::transposition(3, 0, 1);
        assert!(!p.maps_prefix(0));
        assert!(!p.maps_prefix(1));
        assert!(p.maps_prefix(2));
        // A permutation fixing 0 renames a j=0 scanner to a j=0 scanner.
        assert!(Permutation::transposition(3, 1, 2).maps_prefix(0));
        // Skipping me=2: scanned {0} at j=1, image {1}; want {k<π(1)=0}
        // minus π(2)=2 = {} — mismatch.
        assert!(!p.maps_scan_prefix(1, 2));
        // me=0 at j=1: scanned {} (k=0 is me), image {}; want
        // {k < π(1)=0} minus π(0)=1 = {} — ok.
        assert!(p.maps_scan_prefix(1, 0));
    }

    #[test]
    fn ownership_equivariance_filters_permutations() {
        // Two vars owned by p0 and p1 but NOT declared pid-indexed: any
        // permutation moving p0 or p1 breaks ownership equivariance.
        let mut b = VarSpec::builder();
        b.var("a", 0, Some(ProcId(0)));
        b.var("b", 0, Some(ProcId(1)));
        let spec = b.build();
        let g = SymmetryGroup::for_spec(&spec, 2);
        assert!(g.is_trivial());

        // The same layout declared as a pid-indexed array relabels
        // cleanly and keeps both permutations.
        let mut b = VarSpec::builder();
        let base = b.array("a", 2, 0, |i| Some(ProcId(i as u32)));
        b.mark_pid_indexed(base, 2);
        let spec = b.build();
        let g = SymmetryGroup::for_spec(&spec, 2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.var_map(1), &[1, 0]);
    }

    #[test]
    fn directive_renaming_covers_every_variant() {
        let mut b = VarSpec::builder();
        let base = b.array("f", 2, 0, |_| None);
        b.mark_pid_indexed(base, 2);
        let spec = b.build();
        let g = SymmetryGroup::for_spec(&spec, 2);
        let swap = g.find_transposition(0, 1).expect("swap kept");
        assert_eq!(
            g.rename_directive(swap, Directive::Issue(ProcId(0))),
            Directive::Issue(ProcId(1))
        );
        assert_eq!(
            g.rename_directive(swap, Directive::CommitVar(ProcId(1), VarId(0))),
            Directive::CommitVar(ProcId(0), VarId(1))
        );
        assert_eq!(
            g.rename_directive(swap, Directive::Crash(ProcId(0))),
            Directive::Crash(ProcId(1))
        );
    }

    #[test]
    fn wide_systems_fall_back_to_identity() {
        let spec = VarSpec::remote(1);
        let g = SymmetryGroup::for_spec(&spec, 9);
        assert!(g.is_trivial());
    }
}

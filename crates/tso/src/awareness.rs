//! Awareness sets (Definition 1 of the paper).
//!
//! Process `p` is *aware of* `q` after execution `E` if `p = q` or there is
//! information flow from `q` to `p` through shared memory: `p` read a
//! variable last committed by `q`, or last committed by some `r` that was
//! aware of `q` **at the time `r` issued that write**.
//!
//! The "at issue time" clause is why buffered writes carry a snapshot of the
//! issuer's awareness set (see [`crate::buffer::PendingWrite`]).
//!
//! Awareness sets only grow along an execution. They are represented as
//! copy-on-write shared sets so that snapshotting at write-issue time is
//! O(1) and memory stays proportional to the number of distinct sets.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::ids::ProcId;

/// A copy-on-write awareness set.
#[derive(Clone, PartialEq, Eq)]
pub struct AwSet {
    inner: Arc<BTreeSet<ProcId>>,
}

impl AwSet {
    /// The initial awareness set of process `p`: `{p}`.
    pub fn singleton(p: ProcId) -> Self {
        let mut s = BTreeSet::new();
        s.insert(p);
        AwSet { inner: Arc::new(s) }
    }

    /// An empty awareness set (used for never-scheduled processes).
    pub fn empty() -> Self {
        AwSet {
            inner: Arc::new(BTreeSet::new()),
        }
    }

    /// Returns `true` if the set contains `p`.
    pub fn contains(&self, p: ProcId) -> bool {
        self.inner.contains(&p)
    }

    /// Number of processes in the set.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts a single process.
    pub fn insert(&mut self, p: ProcId) {
        if !self.inner.contains(&p) {
            Arc::make_mut(&mut self.inner).insert(p);
        }
    }

    /// Merges `other` into `self` (set union).
    pub fn union_with(&mut self, other: &AwSet) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let missing: Vec<ProcId> = other
            .inner
            .iter()
            .filter(|p| !self.inner.contains(p))
            .copied()
            .collect();
        if !missing.is_empty() {
            let set = Arc::make_mut(&mut self.inner);
            set.extend(missing);
        }
    }

    /// O(1) snapshot of the current contents (copy-on-write share).
    pub fn snapshot(&self) -> AwSet {
        self.clone()
    }

    /// Iterates the members in increasing ID order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.inner.iter().copied()
    }

    /// Returns `true` if the intersection of `self` with `others` is
    /// contained in `{me}` — the IN1 condition of Definition 4 for one
    /// process.
    pub fn intersects_only_self(&self, me: ProcId, others: &BTreeSet<ProcId>) -> bool {
        self.inner.iter().all(|p| *p == me || !others.contains(p))
    }
}

impl fmt::Debug for AwSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.inner.iter()).finish()
    }
}

impl FromIterator<ProcId> for AwSet {
    fn from_iter<T: IntoIterator<Item = ProcId>>(iter: T) -> Self {
        AwSet {
            inner: Arc::new(iter.into_iter().collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_self() {
        let s = AwSet::singleton(ProcId(3));
        assert!(s.contains(ProcId(3)));
        assert!(!s.contains(ProcId(4)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn snapshot_is_immutable_under_later_growth() {
        let mut s = AwSet::singleton(ProcId(0));
        let snap = s.snapshot();
        s.insert(ProcId(1));
        s.insert(ProcId(2));
        assert_eq!(snap.len(), 1, "snapshot must not see later insertions");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_merges_both_sides() {
        let mut a = AwSet::singleton(ProcId(0));
        let b: AwSet = [ProcId(1), ProcId(2)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(ProcId(1)));
        assert!(a.contains(ProcId(2)));
        // b unchanged.
        assert_eq!(b.len(), 2);
        assert!(!b.contains(ProcId(0)));
    }

    #[test]
    fn union_with_self_is_noop() {
        let mut a = AwSet::singleton(ProcId(0));
        let b = a.clone();
        a.union_with(&b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn in1_check() {
        let invisible: BTreeSet<ProcId> = [ProcId(5), ProcId(6)].into_iter().collect();
        let ok = AwSet::singleton(ProcId(5));
        assert!(ok.intersects_only_self(ProcId(5), &invisible));
        let bad: AwSet = [ProcId(5), ProcId(6)].into_iter().collect();
        assert!(!bad.intersects_only_self(ProcId(5), &invisible));
        let unrelated: AwSet = [ProcId(1), ProcId(2)].into_iter().collect();
        assert!(unrelated.intersects_only_self(ProcId(1), &invisible));
    }

    #[test]
    fn iter_in_id_order() {
        let s: AwSet = [ProcId(4), ProcId(1), ProcId(3)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![ProcId(1), ProcId(3), ProcId(4)]);
    }
}

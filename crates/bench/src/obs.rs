//! Environment-driven telemetry for the experiment binaries.
//!
//! Every `exp_*` binary calls [`probe_from_env`] at startup: when any of
//! the `TPA_OBS_*` variables are set it returns a live
//! [`tpa_obs::Recorder`] the binary threads into the checker and the
//! construction; otherwise telemetry stays off and costs nothing.
//!
//! | variable | effect |
//! |---|---|
//! | `TPA_OBS_JSONL` | append the JSONL run log to this path |
//! | `TPA_OBS_TRACE` | write a Chrome trace-event/Perfetto JSON here |
//! | `TPA_OBS_HEARTBEAT_MS` | stderr progress heartbeat every N ms |
//!
//! The JSONL schema is documented in EXPERIMENTS.md and machine-checked
//! by `tpa_obs::schema::validate_lines` (the `obs_validate` binary and
//! the smoke script run it).

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use tpa_obs::Recorder;

/// Builds a [`Recorder`] from the `TPA_OBS_*` environment, or `None`
/// when none of the variables are set. I/O errors disable telemetry with
/// a stderr note rather than failing the experiment — the tables on
/// stdout are the primary artifact.
pub fn probe_from_env() -> Option<Arc<Recorder>> {
    let jsonl = std::env::var("TPA_OBS_JSONL").ok();
    let trace = std::env::var("TPA_OBS_TRACE").ok();
    let heartbeat = std::env::var("TPA_OBS_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    if jsonl.is_none() && trace.is_none() && heartbeat.is_none() {
        return None;
    }
    match Recorder::to_files(
        jsonl.as_deref().map(Path::new),
        trace.as_deref().map(Path::new),
        heartbeat,
    ) {
        Ok(recorder) => Some(Arc::new(recorder)),
        Err(e) => {
            eprintln!("[obs] telemetry disabled: {e}");
            None
        }
    }
}

/// Flushes and closes an env-built recorder (writes the Perfetto file).
/// Safe to call with `None` or more than once.
pub fn finish(probe: &Option<Arc<Recorder>>) {
    if let Some(recorder) = probe {
        recorder.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var manipulation is process-global, so the three scenarios run
    // in one test to avoid cross-test races.
    #[test]
    fn probe_from_env_respects_the_environment() {
        // No variables: no probe. (Guard against ambient TPA_OBS_* from
        // the invoking shell.)
        for k in ["TPA_OBS_JSONL", "TPA_OBS_TRACE", "TPA_OBS_HEARTBEAT_MS"] {
            std::env::remove_var(k);
        }
        assert!(probe_from_env().is_none());

        // A JSONL path: live probe, and finish() lands the file.
        let dir = std::env::temp_dir().join("tpa-obs-env-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        std::env::set_var("TPA_OBS_JSONL", &path);
        let probe = probe_from_env();
        assert!(probe.is_some());
        finish(&probe);
        assert!(path.exists());
        std::env::remove_var("TPA_OBS_JSONL");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Table/JSON output helpers shared by the experiment binaries.

use std::fs;
use std::io::Write as _;

use serde::Serialize;

/// Prints an aligned text table: `headers` then `rows` of equal arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes `rows` as pretty JSON to the path named by the `TPA_JSON`
/// environment variable, if set. Errors are reported to stderr but never
/// fatal (the table on stdout is the primary artifact).
pub fn maybe_write_json<T: Serialize>(experiment: &str, rows: &T) {
    let Ok(path) = std::env::var("TPA_JSON") else { return };
    let payload = match serde_json::to_string_pretty(rows) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[{experiment}] JSON serialisation failed: {e}");
            return;
        }
    };
    match fs::File::create(&path).and_then(|mut f| f.write_all(payload.as_bytes())) {
        Ok(()) => eprintln!("[{experiment}] rows written to {path}"),
        Err(e) => eprintln!("[{experiment}] cannot write {path}: {e}"),
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.500");
        assert_eq!(fmt_f64(2.0e9), "2.000e9");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        print_table("demo", &["a"], &[vec!["1".into(), "2".into()]]);
    }
}

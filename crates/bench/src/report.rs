//! Table/JSON output helpers shared by the experiment binaries.
//!
//! JSON export goes through the local [`ToJson`] trait rather than serde:
//! the build environment is offline, the row structs are flat, and a
//! hand-rolled emitter keeps the dependency surface at zero.

use std::fs;
use std::io::Write as _;

/// Prints an aligned text table: `headers` then `rows` of equal arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// A value that can render itself as a JSON document fragment.
pub trait ToJson {
    /// Renders the value as JSON (no trailing newline).
    fn to_json(&self) -> String;
}

/// Escapes a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an object from `(key, rendered-value)` pairs, one field per
/// line — the shape `serde_json::to_string_pretty` produced for the flat
/// row structs.
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body = fields
        .iter()
        .map(|(k, v)| format!("  {}: {}", json_string(k), v.replace('\n', "\n  ")))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n}}")
}

impl ToJson for bool {
    fn to_json(&self) -> String {
        self.to_string()
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> String {
        json_string(self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            self.to_string()
        } else {
            // JSON has no NaN/inf; null is what serde_json emits for the
            // lossy formatters and is good enough for report rows.
            "null".to_owned()
        }
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let body = self
            .iter()
            .map(|x| {
                let rendered = x.to_json().replace('\n', "\n  ");
                format!("  {rendered}")
            })
            .collect::<Vec<_>>()
            .join(",\n");
        if body.is_empty() {
            "[]".to_owned()
        } else {
            format!("[\n{body}\n]")
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(x) => x.to_json(),
            None => "null".to_owned(),
        }
    }
}

impl ToJson for tpa_tso::ProcId {
    fn to_json(&self) -> String {
        self.0.to_string()
    }
}

impl ToJson for tpa_check::WorkerStats {
    fn to_json(&self) -> String {
        json_object(&[
            ("worker", self.worker.to_json()),
            ("nodes_expanded", self.nodes_expanded.to_json()),
            ("transitions", self.transitions.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("sleep_prunes", self.sleep_prunes.to_json()),
            ("donated", self.donated.to_json()),
            ("max_frontier", self.max_frontier.to_json()),
        ])
    }
}

impl ToJson for tpa_adversary::RoundTrace {
    fn to_json(&self) -> String {
        json_object(&[
            ("round", self.round.to_json()),
            ("read_iters", self.read_iters.to_json()),
            ("write_iters", self.write_iters.to_json()),
            ("reg_criticals", self.reg_criticals.to_json()),
            ("act_start", self.act_start.to_json()),
            ("act_end", self.act_end.to_json()),
            ("criticals_per_active", self.criticals_per_active.to_json()),
            ("finisher", self.finisher.to_json()),
        ])
    }
}

/// Writes `rows` as pretty JSON to the path named by the `TPA_JSON`
/// environment variable, if set. Errors are reported to stderr but never
/// fatal (the table on stdout is the primary artifact).
pub fn maybe_write_json<T: ToJson + ?Sized>(experiment: &str, rows: &T) {
    let Ok(path) = std::env::var("TPA_JSON") else {
        return;
    };
    let payload = rows.to_json();
    match fs::File::create(&path).and_then(|mut f| f.write_all(payload.as_bytes())) {
        Ok(()) => eprintln!("[{experiment}] rows written to {path}"),
        Err(e) => eprintln!("[{experiment}] cannot write {path}: {e}"),
    }
}

/// Writes `payload` to `path` unconditionally — for benchmark artifacts
/// that are committed alongside the docs (e.g. `BENCH_check.json`).
/// Errors are reported to stderr but never fatal.
pub fn write_json_file(experiment: &str, path: &str, payload: &str) {
    match fs::File::create(path).and_then(|mut f| f.write_all(payload.as_bytes())) {
        Ok(()) => eprintln!("[{experiment}] benchmark record written to {path}"),
        Err(e) => eprintln!("[{experiment}] cannot write {path}: {e}"),
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.500");
        assert_eq!(fmt_f64(2.0e9), "2.000e9");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        print_table("demo", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn json_object_and_array_shape() {
        let obj = json_object(&[("x", 1u64.to_json()), ("s", "hi".to_json())]);
        assert_eq!(obj, "{\n  \"x\": 1,\n  \"s\": \"hi\"\n}");
        let arr = vec![1u64, 2].to_json();
        assert_eq!(arr, "[\n  1,\n  2\n]");
        assert_eq!(Vec::<u64>::new().to_json(), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(2.5f64.to_json(), "2.5");
    }
}

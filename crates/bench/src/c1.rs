//! C1: explorer-effort benchmark rows, shared by `exp_c1_explorer` and
//! `report_all`.
//!
//! For each simulated lock at small `n` this runs the [`Checker`]
//! exhaustive explorer and records transitions executed, directives put
//! to sleep, state-cache skips, distinct states, wall time, and search
//! throughput. [`measure_speedup`] reruns one instance at 1 thread and
//! at 4 for the parallel-engine record; [`write_bench_json`] lands both
//! in `BENCH_check.json` (path overridable via `TPA_BENCH_JSON`).

use tpa_check::{default_threads, Checker, Report};
use tpa_tso::{MemoryModel, System};

use crate::report::{self, fmt_f64, ToJson};

/// One row of the C1 table: one exhaustive check of one lock.
pub struct CheckRow {
    /// Lock name, per [`System::name`].
    pub algo: String,
    /// Process count the lock was instantiated for.
    pub n: usize,
    /// Schedule-length bound the explorer ran under.
    pub max_steps: usize,
    /// Worker threads the search fanned across.
    pub threads: usize,
    /// Transitions actually executed.
    pub transitions: u64,
    /// Directives skipped because they slept.
    pub pruned_sleep: u64,
    /// Visits suppressed by the state cache.
    pub cache_skips: u64,
    /// Distinct states visited.
    pub unique_states: usize,
    /// Wall-clock time for the whole search, in milliseconds.
    pub wall_ms: f64,
    /// Distinct states per second of wall time.
    pub states_per_sec: f64,
    /// Whether the search exhausted the bounded space.
    pub complete: bool,
    /// `"pass"` or `"VIOLATION"`.
    pub verdict: &'static str,
}

impl CheckRow {
    /// Flattens a checker [`Report`] into a table/JSON row.
    pub fn from_report(report: &Report, n: usize, max_steps: usize) -> Self {
        CheckRow {
            algo: report.algo.clone(),
            n,
            max_steps,
            threads: report.threads,
            transitions: report.stats.transitions,
            pruned_sleep: report.stats.pruned_sleep,
            cache_skips: report.stats.cache_skips,
            unique_states: report.stats.unique_states,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            states_per_sec: report.states_per_sec(),
            complete: report.stats.complete,
            verdict: if report.verdict.passed() {
                "pass"
            } else {
                "VIOLATION"
            },
        }
    }
}

impl ToJson for CheckRow {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("threads", self.threads.to_json()),
            ("transitions", self.transitions.to_json()),
            ("pruned_sleep", self.pruned_sleep.to_json()),
            ("cache_skips", self.cache_skips.to_json()),
            ("unique_states", self.unique_states.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("states_per_sec", self.states_per_sec.to_json()),
            ("complete", self.complete.to_json()),
            ("verdict", self.verdict.to_json()),
        ])
    }
}

/// The 1-thread-vs-4-thread rerun of one exhaustive instance.
pub struct SpeedupRecord {
    /// Lock name.
    pub algo: String,
    /// Process count.
    pub n: usize,
    /// Schedule-length bound.
    pub max_steps: usize,
    /// The 1-thread run.
    pub base: CheckRow,
    /// The 4-thread run.
    pub parallel: CheckRow,
    /// `base.wall / parallel.wall`.
    pub speedup: f64,
    /// What the machine could have offered ([`default_threads`]).
    pub hardware_threads: usize,
}

impl ToJson for SpeedupRecord {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("sequential", self.base.to_json()),
            ("parallel", self.parallel.to_json()),
            ("speedup", self.speedup.to_json()),
            ("hardware_threads", self.hardware_threads.to_json()),
        ])
    }
}

/// One exhaustive TSO check with the C1 budget (4M transitions).
pub fn check(system: &dyn System, max_steps: usize, threads: usize) -> Report {
    Checker::new(system)
        .model(MemoryModel::Tso)
        .max_steps(max_steps)
        .max_transitions(4_000_000)
        .threads(threads)
        .exhaustive()
}

/// Runs the whole lock portfolio at each `(n, max_steps)` size.
pub fn portfolio_rows(sizes: &[(usize, usize)], threads: usize) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    for &(n, max_steps) in sizes {
        for lock in tpa_algos::all_locks(n, 1) {
            let report = check(lock.as_ref(), max_steps, threads);
            rows.push(CheckRow::from_report(&report, n, max_steps));
        }
    }
    rows
}

/// Reruns one lock at 1 thread and at 4 and records the ratio. On a
/// multi-core box the 4-thread run should be markedly faster; a 1-core
/// container honestly reports ~1x (the differential tests, not this
/// number, carry the determinism claim).
pub fn measure_speedup(algo: &str, n: usize, max_steps: usize) -> SpeedupRecord {
    let subject = tpa_algos::lock_by_name(algo, n, 1)
        .unwrap_or_else(|| panic!("unknown lock {algo:?} for the speedup rerun"));
    let seq = check(subject.as_ref(), max_steps, 1);
    let par = check(subject.as_ref(), max_steps, 4);
    SpeedupRecord {
        algo: seq.algo.clone(),
        n,
        max_steps,
        speedup: seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
        base: CheckRow::from_report(&seq, n, max_steps),
        parallel: CheckRow::from_report(&par, n, max_steps),
        hardware_threads: default_threads(),
    }
}

/// Prints the aligned C1 table.
pub fn print_table(title: &str, rows: &[CheckRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.n.to_string(),
                r.max_steps.to_string(),
                r.threads.to_string(),
                r.transitions.to_string(),
                r.pruned_sleep.to_string(),
                r.cache_skips.to_string(),
                r.unique_states.to_string(),
                format!("{:.1}", r.wall_ms),
                fmt_f64(r.states_per_sec),
                if r.complete { "yes" } else { "budget" }.to_string(),
                r.verdict.to_string(),
            ]
        })
        .collect();
    report::print_table(
        title,
        &[
            "algo",
            "n",
            "steps",
            "thr",
            "transitions",
            "slept",
            "cache",
            "states",
            "wall ms",
            "states/s",
            "complete",
            "verdict",
        ],
        &table,
    );
}

/// Writes the machine-readable benchmark record to `BENCH_check.json`
/// (or the `TPA_BENCH_JSON` override) and announces the speedup line.
pub fn write_bench_json(threads: usize, rows: &[CheckRow], speedup: &SpeedupRecord) {
    println!(
        "\nspeedup: {} n={} — {:.1} ms at 1 thread, {:.1} ms at 4 threads \
         ({:.2}x, {} hardware threads)",
        speedup.algo,
        speedup.n,
        speedup.base.wall_ms,
        speedup.parallel.wall_ms,
        speedup.speedup,
        speedup.hardware_threads,
    );
    let path = std::env::var("TPA_BENCH_JSON").unwrap_or_else(|_| "BENCH_check.json".to_owned());
    let payload = report::json_object(&[
        ("experiment", "c1_explorer".to_json()),
        ("threads", threads.to_json()),
        ("rows", rows.to_json()),
        ("speedup", speedup.to_json()),
    ]);
    report::write_json_file("c1_explorer", &path, &payload);
}

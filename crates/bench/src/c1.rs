//! C1: explorer-effort benchmark rows, shared by `exp_c1_explorer` and
//! `report_all`.
//!
//! For each simulated lock at small `n` this runs the [`Checker`]
//! exhaustive explorer — natively and through the compiled bytecode VM
//! (`Checker::vm(true)`), as adjacent row pairs — and records
//! transitions executed, directives put to sleep, state-cache skips,
//! distinct states, wall time, and search throughput. [`measure_speedup`]
//! reruns one instance at 1 thread and at 4 for the parallel-engine
//! record; [`vm_speedups`] derives the VM-vs-native throughput ratios;
//! [`write_bench_json`] lands everything in `BENCH_check.json` (path
//! overridable via `TPA_BENCH_JSON`).

use std::sync::Arc;

use tpa_check::{default_threads, Checker, Report, WorkerStats};
use tpa_obs::Probe;
use tpa_tso::{MemoryModel, System};

use crate::report::{self, fmt_f64, ToJson};

/// One row of the C1 table: one exhaustive check of one lock.
pub struct CheckRow {
    /// Lock name, per [`System::name`].
    pub algo: String,
    /// Process count the lock was instantiated for.
    pub n: usize,
    /// Schedule-length bound the explorer ran under.
    pub max_steps: usize,
    /// Worker threads the search fanned across.
    pub threads: usize,
    /// Whether the row ran the compiled bytecode (`Checker::vm(true)`)
    /// instead of the native programs. Native and VM rows of the same
    /// lock visit the same states (pinned by `vm_differential.rs`); only
    /// the throughput may differ.
    pub vm: bool,
    /// Transitions actually executed.
    pub transitions: u64,
    /// Directives skipped because they slept.
    pub pruned_sleep: u64,
    /// Visits suppressed by the state cache.
    pub cache_skips: u64,
    /// Distinct states visited.
    pub unique_states: usize,
    /// Wall-clock time for the whole search, in milliseconds.
    pub wall_ms: f64,
    /// Distinct states per second of wall time.
    pub states_per_sec: f64,
    /// Whether the search exhausted the bounded space.
    pub complete: bool,
    /// `"pass"` or `"VIOLATION"`.
    pub verdict: &'static str,
    /// Whether the `.symmetry(true)` rerun engaged canonical caching
    /// (false when the lock is pid-asymmetric or no rerun was made).
    pub symmetry: bool,
    /// Distinct canonical states of the symmetry rerun; equals
    /// `unique_states` when canonical caching did not engage.
    pub canonical_states: usize,
    /// Measured concrete-to-canonical state ratio
    /// (`unique_states / canonical_states`; 1.0 without engagement).
    pub sym_ratio: f64,
    /// Per-worker search counters (one entry per worker thread).
    pub workers: Vec<WorkerStats>,
}

impl CheckRow {
    /// Flattens a checker [`Report`] into a table/JSON row.
    pub fn from_report(report: &Report, n: usize, max_steps: usize) -> Self {
        CheckRow {
            algo: report.algo.clone(),
            n,
            max_steps,
            threads: report.threads,
            vm: report.vm,
            transitions: report.stats.transitions,
            pruned_sleep: report.stats.pruned_sleep,
            cache_skips: report.stats.cache_skips,
            unique_states: report.stats.unique_states,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            states_per_sec: report.states_per_sec(),
            complete: report.stats.complete,
            verdict: if report.verdict.passed() {
                "pass"
            } else {
                "VIOLATION"
            },
            symmetry: false,
            canonical_states: report.stats.unique_states,
            sym_ratio: 1.0,
            workers: report.workers.clone(),
        }
    }

    /// Attaches the `.symmetry(true)` rerun's measurement to this row.
    pub fn with_symmetry(mut self, sym: &Report) -> Self {
        self.symmetry = sym.symmetry;
        self.canonical_states = sym.stats.unique_states;
        self.sym_ratio = self.unique_states as f64 / sym.stats.unique_states.max(1) as f64;
        self
    }
}

impl ToJson for CheckRow {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("threads", self.threads.to_json()),
            ("vm", self.vm.to_json()),
            ("transitions", self.transitions.to_json()),
            ("pruned_sleep", self.pruned_sleep.to_json()),
            ("cache_skips", self.cache_skips.to_json()),
            ("unique_states", self.unique_states.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("states_per_sec", self.states_per_sec.to_json()),
            ("complete", self.complete.to_json()),
            ("verdict", self.verdict.to_json()),
            ("symmetry", self.symmetry.to_json()),
            ("canonical_states", self.canonical_states.to_json()),
            ("sym_ratio", self.sym_ratio.to_json()),
            ("workers", self.workers.to_json()),
        ])
    }
}

/// The 1-thread-vs-4-thread rerun of one exhaustive instance.
pub struct SpeedupRecord {
    /// Lock name.
    pub algo: String,
    /// Process count.
    pub n: usize,
    /// Schedule-length bound.
    pub max_steps: usize,
    /// The 1-thread run.
    pub base: CheckRow,
    /// The 4-thread run.
    pub parallel: CheckRow,
    /// `base.wall / parallel.wall`.
    pub speedup: f64,
    /// What the machine could have offered ([`default_threads`]).
    pub hardware_threads: usize,
}

impl ToJson for SpeedupRecord {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("sequential", self.base.to_json()),
            ("parallel", self.parallel.to_json()),
            ("speedup", self.speedup.to_json()),
            ("hardware_threads", self.hardware_threads.to_json()),
        ])
    }
}

/// One exhaustive TSO check with the C1 budget (4M transitions). A
/// probe, if supplied, receives the run lifecycle and per-worker
/// snapshots (see `tpa_obs`).
pub fn check(
    system: &dyn System,
    max_steps: usize,
    threads: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> Report {
    check_with_symmetry(system, max_steps, threads, false, probe)
}

/// [`check`], optionally requesting symmetry-reduced canonical caching.
pub fn check_with_symmetry(
    system: &dyn System,
    max_steps: usize,
    threads: usize,
    symmetry: bool,
    probe: Option<&Arc<dyn Probe>>,
) -> Report {
    check_configured(system, max_steps, threads, symmetry, false, probe)
}

/// The fully-parameterised C1 check: symmetry reduction and the bytecode
/// VM are both opt-in, everything else is the fixed C1 configuration
/// (TSO, 4M transitions).
pub fn check_configured(
    system: &dyn System,
    max_steps: usize,
    threads: usize,
    symmetry: bool,
    vm: bool,
    probe: Option<&Arc<dyn Probe>>,
) -> Report {
    let mut checker = Checker::new(system)
        .model(MemoryModel::Tso)
        .max_steps(max_steps)
        .max_transitions(4_000_000)
        .threads(threads)
        .symmetry(symmetry)
        .vm(vm);
    if let Some(probe) = probe {
        checker = checker.probe(probe.clone());
    }
    checker.exhaustive()
}

/// Runs the whole lock portfolio at each `(n, max_steps)` size, through
/// the native programs and through the compiled bytecode. Each lock
/// contributes two adjacent rows — native then VM — and each row is
/// measured twice (concretely, then with `.symmetry(true)`) so it also
/// carries the canonical-vs-concrete state ratio.
pub fn portfolio_rows(
    sizes: &[(usize, usize)],
    threads: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> Vec<CheckRow> {
    let mut rows = Vec::new();
    for &(n, max_steps) in sizes {
        for lock in tpa_algos::all_locks(n, 1) {
            for vm in [false, true] {
                let report = check_configured(lock.as_ref(), max_steps, threads, false, vm, probe);
                let sym = check_configured(lock.as_ref(), max_steps, threads, true, vm, probe);
                rows.push(CheckRow::from_report(&report, n, max_steps).with_symmetry(&sym));
            }
        }
    }
    rows
}

/// The measured VM-vs-native throughput ratios, one per (lock, size)
/// pair of adjacent [`portfolio_rows`] rows. States-per-second is the
/// honest basis: the differential suite pins both paths to the same
/// state set, so this is purely a wall-clock ratio.
pub fn vm_speedups(rows: &[CheckRow]) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let [native, vm] = pair else { continue };
        if native.vm || !vm.vm || native.algo != vm.algo {
            continue;
        }
        let ratio = if native.states_per_sec > 0.0 {
            vm.states_per_sec / native.states_per_sec
        } else {
            0.0
        };
        out.push((native.algo.clone(), native.n, ratio));
    }
    out
}

/// Reruns one lock at 1 thread and at 4 and records the ratio. On a
/// multi-core box the 4-thread run should be markedly faster; a 1-core
/// container honestly reports ~1x (the differential tests, not this
/// number, carry the determinism claim).
pub fn measure_speedup(
    algo: &str,
    n: usize,
    max_steps: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> SpeedupRecord {
    let subject = tpa_algos::lock_by_name(algo, n, 1)
        .unwrap_or_else(|| panic!("unknown lock {algo:?} for the speedup rerun"));
    let seq = check(subject.as_ref(), max_steps, 1, probe);
    let par = check(subject.as_ref(), max_steps, 4, probe);
    SpeedupRecord {
        algo: seq.algo.clone(),
        n,
        max_steps,
        speedup: seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
        base: CheckRow::from_report(&seq, n, max_steps),
        parallel: CheckRow::from_report(&par, n, max_steps),
        hardware_threads: default_threads(),
    }
}

/// Prints the aligned C1 table.
pub fn print_table(title: &str, rows: &[CheckRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.n.to_string(),
                r.max_steps.to_string(),
                r.threads.to_string(),
                if r.vm { "vm" } else { "native" }.to_string(),
                r.transitions.to_string(),
                r.pruned_sleep.to_string(),
                r.cache_skips.to_string(),
                r.unique_states.to_string(),
                format!("{:.1}", r.wall_ms),
                fmt_f64(r.states_per_sec),
                r.canonical_states.to_string(),
                if r.symmetry {
                    format!("{:.2}x", r.sym_ratio)
                } else {
                    "-".to_string()
                },
                if r.complete { "yes" } else { "budget" }.to_string(),
                r.verdict.to_string(),
            ]
        })
        .collect();
    report::print_table(
        title,
        &[
            "algo",
            "n",
            "steps",
            "thr",
            "path",
            "transitions",
            "slept",
            "cache",
            "states",
            "wall ms",
            "states/s",
            "canonical",
            "sym",
            "complete",
            "verdict",
        ],
        &table,
    );
}

/// Writes the machine-readable benchmark record to `BENCH_check.json`
/// (or the `TPA_BENCH_JSON` override) and announces the speedup line.
pub fn write_bench_json(threads: usize, rows: &[CheckRow], speedup: &SpeedupRecord) {
    println!(
        "\nspeedup: {} n={} — {:.1} ms at 1 thread, {:.1} ms at 4 threads \
         ({:.2}x, {} hardware threads)",
        speedup.algo,
        speedup.n,
        speedup.base.wall_ms,
        speedup.parallel.wall_ms,
        speedup.speedup,
        speedup.hardware_threads,
    );
    let path = std::env::var("TPA_BENCH_JSON").unwrap_or_else(|_| "BENCH_check.json".to_owned());
    let payload = bench_json_payload(threads, rows, speedup);
    report::write_json_file("c1_explorer", &path, &payload);
}

/// Renders the `BENCH_check.json` document (split out so tests can
/// round-trip it without touching the filesystem).
pub fn bench_json_payload(threads: usize, rows: &[CheckRow], speedup: &SpeedupRecord) -> String {
    report::json_object(&[
        ("experiment", "c1_explorer".to_json()),
        ("threads", threads.to_json()),
        ("rows", rows.to_json()),
        ("speedup", speedup.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_obs::json::{parse, Json};

    /// The bench record must survive a real JSON parser — including the
    /// degenerate zero-wall case, where `states_per_sec` must serialise
    /// as a finite number (not `inf`/`NaN`, which JSON cannot express).
    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let lock = tpa_algos::lock_by_name("tas", 2, 1).unwrap();
        let mut report = check(lock.as_ref(), 30, 1, None);
        report.wall = std::time::Duration::ZERO;
        let row = CheckRow::from_report(&report, 2, 30);
        let speedup = SpeedupRecord {
            algo: row.algo.clone(),
            n: 2,
            max_steps: 30,
            speedup: 1.0,
            base: CheckRow::from_report(&report, 2, 30),
            parallel: CheckRow::from_report(&report, 2, 30),
            hardware_threads: default_threads(),
        };
        let payload = bench_json_payload(1, &[row], &speedup);

        let v = parse(&payload).expect("bench JSON must parse");
        assert_eq!(
            v.get("experiment").and_then(Json::as_str),
            Some("c1_explorer")
        );
        let rows = v.get("rows").and_then(Json::as_arr).expect("rows array");
        let r = &rows[0];
        assert_eq!(r.get("algo").and_then(Json::as_str), Some("tas"));
        assert_eq!(r.get("vm").and_then(Json::as_bool), Some(false));
        // Symmetry measurement fields are always present; without a
        // `.symmetry(true)` rerun attached they report no reduction.
        assert_eq!(r.get("symmetry").and_then(Json::as_bool), Some(false));
        assert_eq!(r.get("sym_ratio").and_then(Json::as_num), Some(1.0));
        assert_eq!(r.get("states_per_sec").and_then(Json::as_num), Some(0.0));
        assert_eq!(r.get("wall_ms").and_then(Json::as_num), Some(0.0));
        // The per-worker breakdown survives with its counters intact.
        let workers = r.get("workers").and_then(Json::as_arr).expect("workers");
        assert_eq!(workers.len(), 1);
        assert_eq!(
            workers[0].get("transitions").and_then(Json::as_u64),
            Some(report.stats.transitions)
        );
        assert!(v.get("speedup").and_then(|s| s.get("parallel")).is_some());
    }

    /// `portfolio_rows` emits native/VM row pairs and `vm_speedups`
    /// pairs them back up; the two paths agree on the state count.
    #[test]
    fn portfolio_rows_pair_native_with_vm() {
        let rows = portfolio_rows(&[(2, 12)], 1, None);
        assert_eq!(rows.len() % 2, 0, "rows must come in native/VM pairs");
        for pair in rows.chunks(2) {
            let [native, vm] = pair else { unreachable!() };
            assert_eq!(native.algo, vm.algo);
            assert!(!native.vm, "{}: first row of a pair is native", native.algo);
            assert!(vm.vm, "{}: second row of a pair is the VM", vm.algo);
            assert_eq!(
                native.unique_states, vm.unique_states,
                "{}: the VM search visited a different state set",
                native.algo
            );
            assert_eq!(
                native.canonical_states, vm.canonical_states,
                "{}",
                native.algo
            );
        }
        let speedups = vm_speedups(&rows);
        assert_eq!(speedups.len(), rows.len() / 2);
        for (algo, n, ratio) in &speedups {
            assert_eq!(*n, 2);
            assert!(*ratio > 0.0, "{algo}: degenerate VM speedup ratio");
        }
    }
}

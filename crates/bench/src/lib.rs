//! # tpa-bench — experiment harnesses
//!
//! One module per experiment of EXPERIMENTS.md, each producing
//! serialisable row structs consumed by the `exp_*` binaries, the
//! integration tests, and the Criterion benches. The experiments
//! regenerate every figure/table-equivalent of the paper:
//!
//! | id | paper artifact | binary |
//! |---|---|---|
//! | F1 | Figure 1 — structure of the inductive construction | `exp_f1_construction` |
//! | T1 | Theorems 1 & 3 — measured vs analytic `Act(H_i)` decay | `exp_t1_theorem1` |
//! | T2 | Corollary 2 — `Ω(log log N)` fences for linear adaptivity | `exp_t2_corollary2` |
//! | T3 | Corollary 3 — `Ω(log log log N)` for exponential adaptivity | `exp_t3_corollary3` |
//! | T4 | Corollary 1 / Section 6 — the adaptive-vs-fence separation | `exp_t4_separation` |
//! | T5 | Lemma 9 — object-to-mutex reduction cost transfer | `exp_t5_lemma9` |
//! | T6 | Theorem 1 — the feasibility frontier across f-families | `exp_t6_frontier` |
//! | C1 | checker cross-validation — explorer effort & parallel speedup | `exp_c1_explorer` |
//! | R1 | crash-fault model — crash budgets across the bakery variants | `exp_r1_crash` |
//!
//! Each binary prints an aligned table and, when the `TPA_JSON`
//! environment variable names a path, writes the raw rows as JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c1;
pub mod experiments;
pub mod obs;
pub mod r1;
pub mod report;

pub use experiments::*;

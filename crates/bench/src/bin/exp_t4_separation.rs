//! Experiment T4 — the adaptive-vs-fence separation (Corollary 1 and the
//! Section 1/6 discussion).
//!
//! Per-passage fence and RMR costs of every simulated lock as the actual
//! contention `k` sweeps at fixed `n`, under a fair lazy-commit schedule:
//!
//! * non-adaptive constant-fence locks (bakery) keep fences flat while
//!   paying Θ(n) RMRs even solo — the price of escaping the lower bound;
//! * adaptive locks (ticketq, splitter) are cheap solo but their fences
//!   grow with `k` — the price of being adaptive;
//! * the tournament lock pays Θ(log n) of both.
//!
//! Usage: `exp_t4_separation [n]` (default 64).

use tpa_bench::obs;
use tpa_bench::report::{self, fmt_f64};
use tpa_obs::Probe;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t4: contention sweep, n={n}"));
    }

    let algos: &[&str] = &[
        "tas",
        "ttas",
        "ticketq",
        "mcs",
        "bakery",
        "filter",
        "onebit",
        "tournament",
        "dijkstra",
        "splitter",
    ];
    let ks: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .iter()
        .copied()
        .filter(|k| *k <= n)
        .collect();
    let rows = tpa_bench::t4_rows(algos, n, &ks);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.k.to_string(),
                r.fences_max.to_string(),
                fmt_f64(r.fences_avg),
                r.rmr_dsm_max.to_string(),
                r.rmr_wb_max.to_string(),
                r.point_contention.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("T4: per-passage complexity vs contention k (n = {n}, lazy commits)"),
        &[
            "algo",
            "k",
            "fences max",
            "fences avg",
            "RMR dsm max",
            "RMR wb max",
            "point cont.",
        ],
        &table,
    );
    report::maybe_write_json("T4", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t4: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

//! Experiment T2 — Corollary 2: linear adaptivity pays `Ω(log log N)`
//! fences.
//!
//! Sweeps `N = 2^8 … 2^(2^20)` (in log-space) and reports, for
//! `f(i) = c·i`, the largest `i` satisfying the Theorem 1 inequality next
//! to the paper's guaranteed feasible point `(1/3c)·log₂log₂N`. The
//! small-N prefix is cross-checked against the executable construction on
//! the adaptive splitter lock.
//!
//! Usage: `exp_t2_corollary2 [c]` (default 1).

use std::sync::Arc;

use tpa_bench::obs;
use tpa_bench::report::{self, fmt_f64};
use tpa_obs::Probe;

fn main() {
    let c: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let recorder = obs::probe_from_env();
    let probe: Option<Arc<dyn Probe>> = recorder.clone().map(|r| r as Arc<dyn Probe>);

    let log2_ns: Vec<f64> = (3..=20).map(|j| (1u64 << j) as f64).collect();
    let rows = tpa_bench::t2_rows(c, &log2_ns);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("2^{}", r.log2_n),
                fmt_f64(r.loglog),
                r.max_feasible_i.to_string(),
                fmt_f64(r.guaranteed_point),
                fmt_f64(r.max_feasible_i as f64 / r.loglog),
            ]
        })
        .collect();
    report::print_table(
        &format!("T2: Corollary 2 — f(i) = {c}·i forces Ω(log log N) fences"),
        &[
            "N",
            "log2 log2 N",
            "max feasible i",
            "(1/3c)·loglog",
            "i / loglog",
        ],
        &table,
    );

    // Small-N executable cross-check: the construction on a real adaptive
    // read/write lock lives in the same regime as the analytic frontier.
    let mut check = Vec::new();
    for n in [16usize, 64, 256, 1024] {
        if let Some(p) = &probe {
            p.mark(&format!("exp_t2: cross-check splitter n={n}"));
        }
        if let Ok(out) =
            tpa_bench::construction_outcome_probed("splitter", n, 12, false, probe.clone())
        {
            let ln_n = (n as f64).ln();
            let analytic = tpa_adversary::bounds::max_feasible_i(
                ln_n,
                tpa_adversary::Adaptivity::Linear { c },
                64,
            );
            check.push(vec![
                n.to_string(),
                out.fences_forced().to_string(),
                analytic.to_string(),
            ]);
        }
    }
    report::print_table(
        "T2: small-N cross-check (construction on the splitter lock)",
        &["N", "fences forced (measured)", "analytic frontier"],
        &check,
    );
    report::maybe_write_json("T2", &rows);
    obs::finish(&recorder);
}

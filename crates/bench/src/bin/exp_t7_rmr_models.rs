//! Experiment T7 (ablation) — DSM vs CC-write-through vs CC-write-back
//! RMR accounting on identical executions.
//!
//! The paper's results hold in all three models (Section 2); the
//! simulator computes all three simultaneously, so one run prices the
//! same execution three ways. Spinning locks separate the models sharply:
//! under write-back a spin is one miss per invalidation, under
//! write-through every committed write costs an RMR, and under DSM every
//! access to a remote variable does.
//!
//! Usage: `exp_t7_rmr_models [n]` (default 32).

use tpa_bench::{obs, report};
use tpa_obs::Probe;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t7: RMR accounting sweep, n={n}"));
    }
    let algos: &[&str] = &[
        "tas",
        "ttas",
        "ticketq",
        "mcs",
        "bakery",
        "filter",
        "onebit",
        "tournament",
        "dijkstra",
        "splitter",
    ];
    let rows = tpa_bench::t7_rows(algos, n, &[1, 4, 16, 32]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.k.to_string(),
                r.rmr_dsm.to_string(),
                r.rmr_wt.to_string(),
                r.rmr_wb.to_string(),
                r.events.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("T7: worst per-passage RMRs under the three accounting models (n = {n})"),
        &["algo", "k", "DSM", "CC-WT", "CC-WB", "events"],
        &table,
    );
    report::maybe_write_json("T7", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t7: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

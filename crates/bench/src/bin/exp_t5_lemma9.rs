//! Experiment T5 — Lemma 9: the object-to-mutex reduction transfers
//! complexity up to an additive constant.
//!
//! For each of counter / queue / stack, measures the worst per-span fence
//! and RMR cost of (a) a bare ticket operation (`fetch&increment` /
//! `dequeue` / `pop`) and (b) a full passage of the Algorithm 1 one-time
//! mutex built on the object. Lemma 9 predicts a constant additive gap.
//!
//! Usage: `exp_t5_lemma9`.

use tpa_bench::{obs, report};
use tpa_obs::Probe;

fn main() {
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark("exp_t5: lemma 9 reduction sweep");
    }
    let rows = tpa_bench::t5_rows(&[1, 2, 4, 8, 16, 32]);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.object.clone(),
                r.n.to_string(),
                r.bare_fences.to_string(),
                r.mutex_fences.to_string(),
                r.fence_gap.to_string(),
                r.bare_rmr.to_string(),
                r.mutex_rmr.to_string(),
                r.rmr_gap.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "T5: Lemma 9 — bare object op vs Algorithm 1 passage (worst case per span)",
        &[
            "object",
            "N",
            "op fences",
            "mutex fences",
            "gap",
            "op RMR",
            "mutex RMR",
            "RMR gap",
        ],
        &table,
    );
    report::maybe_write_json("T5", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t5: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

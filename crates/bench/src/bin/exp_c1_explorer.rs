//! C1: explorer effort across the lock portfolio — how far the sleep-set
//! and state-cache reductions carry bounded-exhaustive verification, and
//! what the work-distributing parallel engine buys on top.
//!
//! For each simulated lock at small `n` this runs the `Checker`
//! exhaustive explorer twice — through the native programs and through
//! the compiled bytecode VM (`Checker::vm(true)`) — and reports
//! transitions executed, directives put to sleep, state-cache skips,
//! distinct states, wall time, and search throughput for both paths, as
//! adjacent rows: the numbers behind the C1 table in EXPERIMENTS.md. A
//! 1-thread-vs-4-thread rerun of one instance records the parallel
//! speedup, a per-lock line records the VM-vs-native throughput ratio,
//! and a final line demonstrates the verdict pipeline on the
//! deliberately broken `bakery-nofence` variant: found, shrunk, sized.
//!
//! The machine-readable record lands in `BENCH_check.json` (override the
//! path with `TPA_BENCH_JSON`); `TPA_JSON` still exports the raw rows.
//!
//! Usage: `exp_c1_explorer [--quick] [--threads N]`
//! `--quick` restricts to n = 2 and a smaller step bound; `--threads`
//! defaults to everything the machine has.

use std::sync::Arc;

use tpa_bench::{c1, obs, report};
use tpa_check::{default_threads, Verdict};
use tpa_obs::Probe;

fn main() {
    let recorder = obs::probe_from_env();
    let probe: Option<Arc<dyn Probe>> = recorder.clone().map(|r| r as Arc<dyn Probe>);
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads)
        .max(1);
    let sizes: &[(usize, usize)] = if quick {
        &[(2, 40)]
    } else {
        &[(2, 60), (3, 40)]
    };

    let rows = c1::portfolio_rows(sizes, threads, probe.as_ref());
    c1::print_table(
        "C1: bounded-exhaustive explorer effort (TSO, 1 passage)",
        &rows,
    );
    report::maybe_write_json("c1_explorer", rows.as_slice());

    println!("\nVM-vs-native search throughput (states/s ratio, same state set):");
    for (algo, n, ratio) in c1::vm_speedups(&rows) {
        println!("  {algo:<16} n={n}  {ratio:.2}x");
    }

    let (speedup_n, speedup_steps) = if quick { (2, 40) } else { (3, 40) };
    let speedup = c1::measure_speedup("tas", speedup_n, speedup_steps, probe.as_ref());
    c1::write_bench_json(threads, &rows, &speedup);

    // The negative control: a lock with a dropped fence must be caught
    // and the counterexample must shrink to a short schedule.
    let broken = tpa_algos::sim::bakery::BakeryLock::without_doorway_fence(2, 1);
    let report = c1::check(&broken, 60, threads, probe.as_ref());
    match &report.verdict {
        Verdict::Violation {
            invariant,
            found_len,
            shrunk,
            ..
        } => {
            println!(
                "\nnegative control: bakery-nofence violates {invariant}; \
                 schedule {found_len} directives, shrunk to {}",
                shrunk.len()
            );
        }
        Verdict::Pass | Verdict::Incomplete { .. } => {
            println!("\nnegative control FAILED: bakery-nofence was not caught");
            obs::finish(&recorder);
            std::process::exit(1);
        }
    }
    obs::finish(&recorder);
}

//! C1: explorer effort across the lock portfolio — how far the sleep-set
//! and state-cache reductions carry bounded-exhaustive verification.
//!
//! For each simulated lock at small `n` this runs the `tpa-check`
//! exhaustive explorer and reports transitions executed, directives put
//! to sleep, state-cache skips, and distinct states — the numbers behind
//! the C1 table in EXPERIMENTS.md. A final line demonstrates the verdict
//! pipeline on the deliberately broken `bakery-nofence` variant: found,
//! shrunk, and sized.
//!
//! Usage: `exp_c1_explorer [--quick]`
//! `--quick` restricts to n = 2 and a smaller step bound.

use tpa_bench::report::{self, ToJson};
use tpa_check::{check_exhaustive, ExploreConfig, Verdict};
use tpa_tso::MemoryModel;

/// One row of the C1 table.
struct C1Row {
    algo: String,
    n: usize,
    max_steps: usize,
    transitions: u64,
    pruned_sleep: u64,
    cache_skips: u64,
    unique_states: usize,
    complete: bool,
    verdict: &'static str,
}

impl ToJson for C1Row {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("transitions", self.transitions.to_json()),
            ("pruned_sleep", self.pruned_sleep.to_json()),
            ("cache_skips", self.cache_skips.to_json()),
            ("unique_states", self.unique_states.to_json()),
            ("complete", self.complete.to_json()),
            ("verdict", self.verdict.to_json()),
        ])
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[(usize, usize)] = if quick {
        &[(2, 40)]
    } else {
        &[(2, 60), (3, 40)]
    };

    let mut rows: Vec<C1Row> = Vec::new();
    for &(n, max_steps) in sizes {
        for lock in tpa_algos::all_locks(n, 1) {
            let config = ExploreConfig {
                max_steps,
                max_transitions: 4_000_000,
            };
            let report = check_exhaustive(lock.as_ref(), MemoryModel::Tso, &config);
            rows.push(C1Row {
                algo: report.algo.clone(),
                n,
                max_steps,
                transitions: report.stats.transitions,
                pruned_sleep: report.stats.pruned_sleep,
                cache_skips: report.stats.cache_skips,
                unique_states: report.stats.unique_states,
                complete: report.stats.complete,
                verdict: if report.verdict.passed() {
                    "pass"
                } else {
                    "VIOLATION"
                },
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.n.to_string(),
                r.max_steps.to_string(),
                r.transitions.to_string(),
                r.pruned_sleep.to_string(),
                r.cache_skips.to_string(),
                r.unique_states.to_string(),
                if r.complete { "yes" } else { "budget" }.to_string(),
                r.verdict.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "C1: bounded-exhaustive explorer effort (TSO, 1 passage)",
        &[
            "algo",
            "n",
            "steps",
            "transitions",
            "slept",
            "cache",
            "states",
            "complete",
            "verdict",
        ],
        &table,
    );
    report::maybe_write_json("c1_explorer", rows.as_slice());

    // The negative control: a lock with a dropped fence must be caught
    // and the counterexample must shrink to a short schedule.
    let broken = tpa_algos::sim::bakery::BakeryLock::without_doorway_fence(2, 1);
    let config = ExploreConfig {
        max_steps: 60,
        max_transitions: 4_000_000,
    };
    let report = check_exhaustive(&broken, MemoryModel::Tso, &config);
    match &report.verdict {
        Verdict::Violation {
            invariant,
            found_len,
            shrunk,
            ..
        } => {
            println!(
                "\nnegative control: bakery-nofence violates {invariant}; \
                 schedule {found_len} directives, shrunk to {}",
                shrunk.len()
            );
        }
        Verdict::Pass => {
            println!("\nnegative control FAILED: bakery-nofence was not caught");
            std::process::exit(1);
        }
    }
}

//! Validates telemetry artifacts produced under `TPA_OBS_*`.
//!
//! Checks a JSONL run log against the schema in `tpa_obs::schema`
//! (per-line shape, `t` monotonicity, per-worker counter monotonicity)
//! and, optionally, a Chrome trace-event/Perfetto export. Exits non-zero
//! on the first violation — the smoke script uses this as its telemetry
//! gate.
//!
//! Usage: `obs_validate <run.jsonl> [trace.json]`

use std::process::ExitCode;

use tpa_obs::schema;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(jsonl_path) = args.next() else {
        eprintln!("usage: obs_validate <run.jsonl> [trace.json]");
        return ExitCode::FAILURE;
    };
    let trace_path = args.next();

    let raw = match std::fs::read_to_string(&jsonl_path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("obs_validate: cannot read {jsonl_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lines: Vec<&str> = raw.lines().collect();
    match schema::validate_lines(&lines) {
        Ok(summary) => {
            let kinds = summary
                .by_kind
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "{jsonl_path}: OK — {} lines over {} us, {} workers ({kinds})",
                summary.lines, summary.span_us, summary.workers
            );
        }
        Err(e) => {
            eprintln!("obs_validate: {jsonl_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(trace_path) = trace_path {
        let doc = match std::fs::read_to_string(&trace_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("obs_validate: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match schema::validate_trace(&doc) {
            Ok(events) => println!("{trace_path}: OK — {events} trace events"),
            Err(e) => {
                eprintln!("obs_validate: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

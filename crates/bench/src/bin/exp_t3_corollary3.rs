//! Experiment T3 — Corollary 3: exponential adaptivity pays
//! `Ω(log log log N)` fences.
//!
//! Same sweep as T2 for `f(i) = 2^(c·i)`, against the guaranteed point
//! `(1/c)·(log₂log₂log₂N − 1)`.
//!
//! Usage: `exp_t3_corollary3 [c]` (default 1).

use tpa_bench::obs;
use tpa_bench::report::{self, fmt_f64};
use tpa_obs::Probe;

fn main() {
    let c: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t3: analytic sweep, c={c}"));
    }

    // log2 N = 2^j: each step of j adds one to log log N, so the triple
    // log crawls — exactly the separation from T2.
    let log2_ns: Vec<f64> = (3..=40).step_by(2).map(|j| (1u64 << j) as f64).collect();
    let rows = tpa_bench::t3_rows(c, &log2_ns);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("2^{}", r.log2_n),
                fmt_f64(r.loglog),
                r.max_feasible_i.to_string(),
                fmt_f64(r.guaranteed_point),
            ]
        })
        .collect();
    report::print_table(
        &format!("T3: Corollary 3 — f(i) = 2^({c}·i) forces Ω(log log log N) fences"),
        &["N", "log2 log2 log2 N", "max feasible i", "(1/c)(llln - 1)"],
        &table,
    );
    report::maybe_write_json("T3", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t3: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

//! Experiment T6 — the feasibility frontier of Theorem 1.
//!
//! For each adaptivity family and a grid of `N`, the largest `i`
//! satisfying `f(i) ≤ N^(2^-f(i)) / (f(i)!·4^(f(i)+2i))` — i.e. how many
//! fences the lower bound forces on any f-adaptive algorithm. Slower
//! growth of `f` (= stronger adaptivity guarantees) ⇒ more forced fences:
//! the price of being adaptive, as one table.
//!
//! Usage: `exp_t6_frontier`.

use tpa_bench::{obs, report};
use tpa_obs::Probe;

fn main() {
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark("exp_t6: feasibility frontier");
    }
    let log2_ns: Vec<f64> = [
        8.0,
        16.0,
        64.0,
        256.0,
        1024.0,
        4096.0,
        65_536.0,
        1_048_576.0,
    ]
    .to_vec();
    let rows = tpa_bench::t6_rows(&log2_ns);

    // Pivot: families × N.
    let mut families: Vec<String> = rows.iter().map(|r| r.family.clone()).collect();
    families.dedup();
    let mut table = Vec::new();
    for family in &families {
        let mut row = vec![family.clone()];
        for &log2_n in &log2_ns {
            let v = rows
                .iter()
                .find(|r| &r.family == family && r.log2_n == log2_n)
                .map(|r| r.max_feasible_i.to_string())
                .unwrap_or_default();
            row.push(v);
        }
        table.push(row);
    }
    let mut headers: Vec<String> = vec!["adaptivity".into()];
    headers.extend(log2_ns.iter().map(|l| format!("N=2^{l}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    report::print_table(
        "T6: forced fences across the adaptivity landscape",
        &header_refs,
        &table,
    );
    report::maybe_write_json("T6", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t6: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

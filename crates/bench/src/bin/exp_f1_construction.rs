//! Experiment F1 — Figure 1: the structure of one inductive step.
//!
//! Prints the phase-by-phase trace of the adversarial construction (read
//! iterations, write iterations, regularization) with the active-set size
//! after every step — the executable rendering of the paper's Figure 1.
//!
//! Usage: `exp_f1_construction [algo] [n] [rounds]`
//! (defaults: tournament 256 8).

use std::sync::Arc;

use tpa_bench::{obs, report};
use tpa_obs::Probe;

fn main() {
    let mut args = std::env::args().skip(1);
    let algo = args.next().unwrap_or_else(|| "tournament".into());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let recorder = obs::probe_from_env();
    let probe: Option<Arc<dyn Probe>> = recorder.clone().map(|r| r as Arc<dyn Probe>);
    let out = match tpa_bench::construction_outcome_probed(&algo, n, rounds, true, probe) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            obs::finish(&recorder);
            std::process::exit(1);
        }
    };

    println!(
        "algorithm: {} | n = {} | stop: {}",
        out.algorithm, out.n, out.stop
    );
    println!(
        "rounds completed: {} | fences forced: {} | final contention: {} | blocked erased: {}",
        out.rounds_completed(),
        out.fences_forced(),
        out.total_contention,
        out.blocked_erased
    );

    let rows: Vec<Vec<String>> = out
        .phases
        .iter()
        .map(|p| {
            vec![
                p.round.to_string(),
                p.label.clone(),
                p.case_taken.clone(),
                p.act_before.to_string(),
                p.act_after.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "F1: inductive construction trace (Figure 1)",
        &["round", "phase", "case", "|Act| before", "|Act| after"],
        &rows,
    );

    let round_rows: Vec<Vec<String>> = out
        .rounds
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                r.read_iters.to_string(),
                r.write_iters.to_string(),
                r.reg_criticals.to_string(),
                r.criticals_per_active.to_string(),
                r.act_start.to_string(),
                r.act_end.to_string(),
                r.finisher.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "F1: per-round summary (H_i conditions)",
        &[
            "i",
            "s (read)",
            "t (write)",
            "m (reg)",
            "l_i",
            "|Act| start",
            "|Act| end",
            "finisher",
        ],
        &round_rows,
    );
    report::maybe_write_json("F1", &out.rounds);
    obs::finish(&recorder);
}

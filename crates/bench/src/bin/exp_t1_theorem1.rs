//! Experiment T1 — Theorems 1 & 3: measured vs analytic `|Act(H_i)|`.
//!
//! Runs the construction across the algorithm portfolio and an N sweep,
//! reporting the measured active-set decay per round next to Theorem 3's
//! worst-case analytic lower bound (in `ln`; negative = vacuous), plus
//! the Theorem 1 witness: fences forced at total contention `i + 1`.
//!
//! Usage: `exp_t1_theorem1 [rounds]` (default 10).

use tpa_bench::obs;
use tpa_bench::report::{self, fmt_f64};
use tpa_obs::Probe;

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let recorder = obs::probe_from_env();
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t1: portfolio sweep, max_rounds={rounds}"));
    }

    // Scan-based locks make the construction O(n²): cap their sizes.
    let fast: &[&str] = &["tournament", "splitter", "ticketq", "mcs", "ttas"];
    let slow: &[&str] = &["bakery", "filter", "onebit", "dijkstra", "tas"];
    let fast_ns = [64usize, 256, 1024, 4096];
    let slow_ns = [16usize, 64, 256];
    let mut rows = tpa_bench::t1_rows(fast, &fast_ns, rounds);
    rows.extend(tpa_bench::t1_rows(slow, &slow_ns, rounds));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.n.to_string(),
                r.round.to_string(),
                r.act_measured.to_string(),
                fmt_f64(r.theorem3_ln_bound),
                r.criticals_per_active.to_string(),
                r.read_iters.to_string(),
                r.write_iters.to_string(),
                r.reg_criticals.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "T1: construction vs Theorem 3 (ln bound < 0 means vacuous at this N)",
        &[
            "algo",
            "N",
            "i",
            "|Act(H_i)|",
            "ln bound",
            "l_i",
            "s",
            "t",
            "m",
        ],
        &table,
    );

    // Witness summary per algorithm/N.
    let mut summary = Vec::new();
    for (algos, ns) in [(fast, &fast_ns[..]), (slow, &slow_ns[..])] {
        for algo in algos {
            for &n in ns.iter() {
                let per: Vec<_> = rows
                    .iter()
                    .filter(|r| r.algo == *algo && r.n == n)
                    .collect();
                if per.is_empty() {
                    continue;
                }
                let forced = per.iter().take_while(|r| r.act_measured >= 1).count();
                summary.push(vec![(*algo).to_owned(), n.to_string(), forced.to_string()]);
            }
        }
    }
    report::print_table(
        "T1: Theorem 1 witnesses — fences forced in a single passage",
        &["algo", "N", "fences forced (contention = fences + 1)"],
        &summary,
    );
    report::maybe_write_json("T1", &rows);
    if let Some(r) = &recorder {
        r.mark(&format!("exp_t1: {} rows", rows.len()));
    }
    obs::finish(&recorder);
}

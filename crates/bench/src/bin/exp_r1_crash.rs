//! R1: the crash-fault model across the bakery variants — what a crash
//! budget of 1 does to each lock's bounded-exhaustive verification, and
//! the crash-gated negative control behind the R1 table in
//! EXPERIMENTS.md.
//!
//! For each variant (plain, recoverable, recoverable-unfenced, and `tas`
//! for a CAS-based contrast) this runs the `Checker` under the
//! crash-extended invariant battery at crash budgets 0 and 1. Budget 0
//! must reproduce the crash-free state space bit-for-bit; budget 1
//! enumerates crash directives, and the table records who survives. The
//! final lines demonstrate the crash-gated negative control: the
//! unfenced recoverable bakery passes `CrashSafeExclusion` with no
//! budget, and with budget 1 the explorer finds — and ddmin shrinks,
//! keeping the data-losing crash — a crash-induced exclusion violation.
//!
//! Usage: `exp_r1_crash [--quick] [--threads N]`
//! `--quick` lowers the step bound; `--threads` defaults to everything
//! the machine has.

use std::sync::Arc;

use tpa_bench::{obs, r1, report};
use tpa_check::{default_threads, Verdict};
use tpa_obs::Probe;
use tpa_tso::Directive;

fn main() {
    let recorder = obs::probe_from_env();
    let probe: Option<Arc<dyn Probe>> = recorder.clone().map(|r| r as Arc<dyn Probe>);
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads)
        .max(1);
    let max_steps = if quick { 28 } else { 40 };

    let rows = r1::portfolio_rows(2, max_steps, threads, probe.as_ref());
    r1::print_table(
        "R1: crash-fault model (TSO, n = 2, crash-extended battery)",
        &rows,
    );
    report::maybe_write_json("r1_crash", rows.as_slice());

    // Zero-budget rows must be complete and must not have needed the
    // fault model (sanity for the state-space-preservation claim).
    for row in rows.iter().filter(|r| r.max_crashes == 0) {
        if !row.complete {
            println!("\nR1 FAILED: zero-budget row {} hit the budget", row.algo);
            obs::finish(&recorder);
            std::process::exit(1);
        }
    }

    // The crash-gated negative control, both sides.
    let control_steps = if quick { 32 } else { 40 };
    let clean = r1::negative_control(control_steps, 0, threads, probe.as_ref());
    if !clean.verdict.passed() {
        println!("\nnegative control FAILED: crash invariant fired without a budget");
        obs::finish(&recorder);
        std::process::exit(1);
    }
    println!("\nnegative control, budget 0: crash-safe-exclusion vacuously holds (pass)");

    let caught = r1::negative_control(control_steps, 1, threads, probe.as_ref());
    match &caught.verdict {
        Verdict::Violation {
            invariant,
            found_len,
            shrunk,
            ..
        } if shrunk.iter().any(|d| matches!(d, Directive::Crash(_))) => {
            println!(
                "negative control, budget 1: bakery-rec-nofence violates {invariant}; \
                 schedule {found_len} directives, shrunk to {} (crash kept)",
                shrunk.len()
            );
        }
        other => {
            println!(
                "\nnegative control FAILED: crash-induced violation not caught and \
                 shrunk with its crash (got {other:?})"
            );
            obs::finish(&recorder);
            std::process::exit(1);
        }
    }
    obs::finish(&recorder);
}

//! Runs every simulator-side experiment at report scale and emits all
//! tables in one pass (the data behind EXPERIMENTS.md). Hardware numbers
//! (H1) come from `cargo bench -p tpa-bench` separately.
//!
//! Usage: `report_all [--quick]`
//! `--quick` shrinks the sweeps for CI-style smoke runs.

use std::sync::Arc;

use tpa_bench::report::{self, fmt_f64};
use tpa_obs::Probe;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let recorder = tpa_bench::obs::probe_from_env();
    let probe: Option<Arc<dyn Probe>> = recorder.clone().map(|r| r as Arc<dyn Probe>);

    // F1.
    let (f1_algo, f1_n) = if quick {
        ("tournament", 64)
    } else {
        ("tournament", 256)
    };
    if let Some(p) = &probe {
        p.mark(&format!("report_all: F1 {f1_algo} n={f1_n}"));
    }
    let out =
        tpa_bench::construction_outcome_probed(f1_algo, f1_n, 10, true, probe.clone()).unwrap();
    let rows: Vec<Vec<String>> = out
        .rounds
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                r.read_iters.to_string(),
                r.write_iters.to_string(),
                r.reg_criticals.to_string(),
                r.criticals_per_active.to_string(),
                r.act_start.to_string(),
                r.act_end.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("F1: {f1_algo} n={f1_n} — per-round H_i summary"),
        &["i", "s", "t", "m", "l_i", "|Act| start", "|Act| end"],
        &rows,
    );

    // T1 witnesses.
    let (fast_ns, slow_ns): (&[usize], &[usize]) = if quick {
        (&[64, 256], &[16, 64])
    } else {
        (&[64, 256, 1024], &[16, 64, 128])
    };
    let mut t1 = tpa_bench::t1_rows(&["tournament", "splitter", "ticketq", "mcs"], fast_ns, 14);
    t1.extend(tpa_bench::t1_rows(
        &["bakery", "filter", "onebit", "dijkstra"],
        slow_ns,
        14,
    ));
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut rows = Vec::new();
    for r in &t1 {
        let key = (r.algo.clone(), r.n);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let forced = t1
            .iter()
            .filter(|x| x.algo == r.algo && x.n == r.n)
            .take_while(|x| x.act_measured >= 1)
            .count();
        rows.push(vec![r.algo.clone(), r.n.to_string(), forced.to_string()]);
    }
    report::print_table(
        "T1: Theorem 1 witnesses (fences forced)",
        &["algo", "N", "forced"],
        &rows,
    );

    // T2 / T3.
    let log2_ns: Vec<f64> = (3..=if quick { 12 } else { 20 })
        .map(|j| (1u64 << j) as f64)
        .collect();
    let t2 = tpa_bench::t2_rows(1.0, &log2_ns);
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| {
            vec![
                format!("2^{}", r.log2_n),
                fmt_f64(r.loglog),
                r.max_feasible_i.to_string(),
                fmt_f64(r.guaranteed_point),
            ]
        })
        .collect();
    report::print_table(
        "T2: Corollary 2 (f = i)",
        &["N", "loglog", "max i", "(1/3)loglog"],
        &rows,
    );

    let t3 = tpa_bench::t3_rows(1.0, &log2_ns);
    let rows: Vec<Vec<String>> = t3
        .iter()
        .map(|r| {
            vec![
                format!("2^{}", r.log2_n),
                fmt_f64(r.loglog),
                r.max_feasible_i.to_string(),
                fmt_f64(r.guaranteed_point),
            ]
        })
        .collect();
    report::print_table(
        "T3: Corollary 3 (f = 2^i)",
        &["N", "llln", "max i", "(llln-1)"],
        &rows,
    );

    // T4.
    let n = if quick { 16 } else { 64 };
    let ks: Vec<usize> = [1usize, 4, 16, 64]
        .iter()
        .copied()
        .filter(|k| *k <= n)
        .collect();
    let t4 = tpa_bench::t4_rows(
        &[
            "tas",
            "ttas",
            "ticketq",
            "mcs",
            "bakery",
            "filter",
            "onebit",
            "tournament",
            "dijkstra",
            "splitter",
        ],
        n,
        &ks,
    );
    let rows: Vec<Vec<String>> = t4
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.k.to_string(),
                r.fences_max.to_string(),
                r.rmr_dsm_max.to_string(),
                r.rmr_wb_max.to_string(),
                r.point_contention.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("T4: separation at n = {n}"),
        &["algo", "k", "fences", "RMR dsm", "RMR wb", "point"],
        &rows,
    );

    // T5.
    let t5 = tpa_bench::t5_rows(if quick { &[1, 4] } else { &[1, 4, 16] });
    let rows: Vec<Vec<String>> = t5
        .iter()
        .map(|r| {
            vec![
                r.object.clone(),
                r.n.to_string(),
                r.bare_fences.to_string(),
                r.mutex_fences.to_string(),
                r.fence_gap.to_string(),
                r.rmr_gap.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "T5: Lemma 9 gaps",
        &[
            "object",
            "N",
            "op fences",
            "mutex fences",
            "fence gap",
            "RMR gap",
        ],
        &rows,
    );

    // T6.
    let grid: Vec<f64> = if quick {
        vec![16.0, 1024.0]
    } else {
        vec![16.0, 1024.0, 65_536.0, 1_048_576.0]
    };
    let t6 = tpa_bench::t6_rows(&grid);
    let rows: Vec<Vec<String>> = t6
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                format!("2^{}", r.log2_n),
                r.max_feasible_i.to_string(),
            ]
        })
        .collect();
    report::print_table("T6: adaptivity frontier", &["family", "N", "max i"], &rows);

    // T7.
    let t7 = tpa_bench::t7_rows(
        &[
            "tas",
            "ttas",
            "ticketq",
            "mcs",
            "bakery",
            "filter",
            "onebit",
            "tournament",
            "dijkstra",
            "splitter",
        ],
        n,
        &[1, n.min(16)],
    );
    let rows: Vec<Vec<String>> = t7
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.k.to_string(),
                r.rmr_dsm.to_string(),
                r.rmr_wt.to_string(),
                r.rmr_wb.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "T7: RMR models",
        &["algo", "k", "DSM", "CC-WT", "CC-WB"],
        &rows,
    );

    // C1: the checker cross-validation, parallel across what the machine
    // has. Also emits the BENCH_check.json benchmark record.
    let threads = tpa_check::default_threads();
    let sizes: &[(usize, usize)] = if quick {
        &[(2, 40)]
    } else {
        &[(2, 60), (3, 40)]
    };
    let c1 = tpa_bench::c1::portfolio_rows(sizes, threads, probe.as_ref());
    tpa_bench::c1::print_table(&format!("C1: explorer effort ({threads} threads)"), &c1);
    let (sp_n, sp_steps) = if quick { (2, 40) } else { (3, 40) };
    let speedup = tpa_bench::c1::measure_speedup("tas", sp_n, sp_steps, probe.as_ref());
    tpa_bench::c1::write_bench_json(threads, &c1, &speedup);

    // R1: the crash-fault model across the bakery variants.
    let r1_steps = if quick { 28 } else { 40 };
    let r1 = tpa_bench::r1::portfolio_rows(2, r1_steps, threads, probe.as_ref());
    tpa_bench::r1::print_table(
        &format!("R1: crash-fault model (n = 2, {threads} threads)"),
        &r1,
    );

    tpa_bench::obs::finish(&recorder);
    println!("\nall simulator experiments complete; run `cargo bench -p tpa-bench` for H1.");
}

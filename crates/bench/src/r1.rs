//! R1: the crash-fault model — what a crash budget does to the verified
//! portfolio, shared by `exp_r1_crash` and `report_all`.
//!
//! Each row runs one lock through the [`Checker`] exhaustive explorer
//! under the crash-extended invariant battery
//! ([`tpa_check::crash_invariants`]) at a crash budget of 0 and of 1.
//! Budget 0 must reproduce the crash-free state space exactly (the fault
//! model gates enumeration, not semantics); budget 1 adds the crash
//! directives and shows which variants survive them. The negative
//! control isolates the crash-induced failure: the unfenced recoverable
//! bakery checked against [`CrashSafeExclusion`] alone passes with no
//! budget and is caught — with the data-losing crash kept in the shrunk
//! witness — the moment one crash is allowed.

use std::sync::Arc;

use tpa_check::invariant::CrashSafeExclusion;
use tpa_check::{crash_invariants, Checker, Report, Verdict};
use tpa_obs::Probe;
use tpa_tso::{Directive, MemoryModel, System};

use crate::report::{self, ToJson};

/// One row of the R1 table: one crash-aware exhaustive check.
pub struct CrashRow {
    /// Lock name, per [`System::name`].
    pub algo: String,
    /// Process count the lock was instantiated for.
    pub n: usize,
    /// Schedule-length bound the explorer ran under.
    pub max_steps: usize,
    /// Crash budget the search enumerated under.
    pub max_crashes: u32,
    /// Transitions actually executed.
    pub transitions: u64,
    /// Distinct states visited.
    pub unique_states: usize,
    /// Wall-clock time for the whole search, in milliseconds.
    pub wall_ms: f64,
    /// Whether the search exhausted the bounded space.
    pub complete: bool,
    /// `"pass"`, `"incomplete"`, or `"VIOLATION(<invariant>)"`.
    pub verdict: String,
    /// Length of the raw violating schedule (0 on a pass).
    pub witness_len: usize,
    /// Length after ddmin shrinking (0 on a pass).
    pub shrunk_len: usize,
    /// Whether the shrunk witness contains a crash directive.
    pub crash_in_shrunk: bool,
}

impl CrashRow {
    /// Flattens a checker [`Report`] into a table/JSON row.
    pub fn from_report(report: &Report, n: usize, max_steps: usize, max_crashes: u32) -> Self {
        let (verdict, witness_len, shrunk_len, crash_in_shrunk) = match &report.verdict {
            Verdict::Pass => ("pass".to_owned(), 0, 0, false),
            Verdict::Incomplete { .. } => ("incomplete".to_owned(), 0, 0, false),
            Verdict::Violation {
                invariant,
                found_len,
                shrunk,
                ..
            } => (
                format!("VIOLATION({invariant})"),
                *found_len,
                shrunk.len(),
                shrunk.iter().any(|d| matches!(d, Directive::Crash(_))),
            ),
        };
        CrashRow {
            algo: report.algo.clone(),
            n,
            max_steps,
            max_crashes,
            transitions: report.stats.transitions,
            unique_states: report.stats.unique_states,
            wall_ms: report.wall.as_secs_f64() * 1e3,
            complete: report.stats.complete,
            verdict,
            witness_len,
            shrunk_len,
            crash_in_shrunk,
        }
    }
}

impl ToJson for CrashRow {
    fn to_json(&self) -> String {
        report::json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("max_steps", self.max_steps.to_json()),
            ("max_crashes", self.max_crashes.to_json()),
            ("transitions", self.transitions.to_json()),
            ("unique_states", self.unique_states.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            ("complete", self.complete.to_json()),
            ("verdict", self.verdict.to_json()),
            ("witness_len", self.witness_len.to_json()),
            ("shrunk_len", self.shrunk_len.to_json()),
            ("crash_in_shrunk", self.crash_in_shrunk.to_json()),
        ])
    }
}

/// One exhaustive TSO check under the crash-extended battery.
pub fn check(
    system: &dyn System,
    max_steps: usize,
    max_crashes: u32,
    threads: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> Report {
    let mut checker = Checker::new(system)
        .model(MemoryModel::Tso)
        .invariants(crash_invariants())
        .max_steps(max_steps)
        .max_transitions(4_000_000)
        .max_crashes(max_crashes)
        .threads(threads);
    if let Some(probe) = probe {
        checker = checker.probe(probe.clone());
    }
    checker.exhaustive()
}

/// The R1 portfolio: crash-relevant bakery variants plus one CAS-based
/// lock, each at crash budgets 0 and 1.
pub fn portfolio_rows(
    n: usize,
    max_steps: usize,
    threads: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> Vec<CrashRow> {
    use tpa_algos::sim::bakery::BakeryLock;
    let systems: Vec<Box<dyn System>> = vec![
        Box::new(BakeryLock::new(n, 1)),
        Box::new(BakeryLock::recoverable(n, 1)),
        Box::new(BakeryLock::recoverable_without_doorway_fence(n, 1)),
        tpa_algos::lock_by_name("tas", n, 1).expect("tas is registered"),
    ];
    let mut rows = Vec::new();
    for sys in &systems {
        for max_crashes in [0, 1] {
            let report = check(sys.as_ref(), max_steps, max_crashes, threads, probe);
            rows.push(CrashRow::from_report(&report, n, max_steps, max_crashes));
        }
    }
    rows
}

/// The negative control: the unfenced recoverable bakery against
/// [`CrashSafeExclusion`] *alone*, so the only way to fail is a crash
/// that discarded buffered doorway stores. With `max_crashes` = 0 the
/// invariant is vacuous and the check passes; with 1 the explorer must
/// find the crash-induced exclusion violation and ddmin must keep the
/// crash in the minimal witness.
pub fn negative_control(
    max_steps: usize,
    max_crashes: u32,
    threads: usize,
    probe: Option<&Arc<dyn Probe>>,
) -> Report {
    let broken = tpa_algos::sim::bakery::BakeryLock::recoverable_without_doorway_fence(2, 1);
    let mut checker = Checker::new(&broken)
        .model(MemoryModel::Tso)
        .invariants(vec![Box::new(CrashSafeExclusion)])
        .max_steps(max_steps)
        .max_transitions(4_000_000)
        .max_crashes(max_crashes)
        .threads(threads);
    if let Some(probe) = probe {
        checker = checker.probe(probe.clone());
    }
    checker.exhaustive()
}

/// Prints the aligned R1 table.
pub fn print_table(title: &str, rows: &[CrashRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algo.clone(),
                r.n.to_string(),
                r.max_steps.to_string(),
                r.max_crashes.to_string(),
                r.transitions.to_string(),
                r.unique_states.to_string(),
                format!("{:.1}", r.wall_ms),
                if r.complete { "yes" } else { "budget" }.to_string(),
                r.verdict.clone(),
                r.witness_len.to_string(),
                r.shrunk_len.to_string(),
                if r.crash_in_shrunk { "yes" } else { "-" }.to_string(),
            ]
        })
        .collect();
    report::print_table(
        title,
        &[
            "algo",
            "n",
            "steps",
            "crashes",
            "transitions",
            "states",
            "wall ms",
            "complete",
            "verdict",
            "witness",
            "shrunk",
            "crash kept",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_obs::json::{parse, Json};

    #[test]
    fn zero_budget_rows_match_the_crash_free_state_space() {
        let lock = tpa_algos::sim::bakery::BakeryLock::recoverable(2, 1);
        let with_battery = check(&lock, 28, 0, 1, None);
        let plain = Checker::new(&lock)
            .model(MemoryModel::Tso)
            .max_steps(28)
            .max_transitions(4_000_000)
            .threads(1)
            .exhaustive();
        assert!(with_battery.verdict.passed() && plain.verdict.passed());
        assert_eq!(
            with_battery.stats.unique_states, plain.stats.unique_states,
            "the crash battery at budget 0 must not grow the state space"
        );
    }

    #[test]
    fn negative_control_is_crash_gated() {
        let clean = negative_control(32, 0, 2, None);
        assert!(
            clean.verdict.passed(),
            "without a budget the crash invariant is vacuous: {:?}",
            clean.verdict
        );
        let caught = negative_control(32, 1, 2, None);
        let Verdict::Violation {
            invariant, shrunk, ..
        } = &caught.verdict
        else {
            panic!("budget 1 must break the unfenced doorway");
        };
        assert_eq!(*invariant, "crash-safe-exclusion");
        assert!(shrunk.iter().any(|d| matches!(d, Directive::Crash(_))));
    }

    #[test]
    fn crash_rows_round_trip_through_json() {
        let report = negative_control(32, 1, 2, None);
        let row = CrashRow::from_report(&report, 2, 32, 1);
        let payload = report::json_object(&[("rows", vec![row].to_json())]);
        let v = parse(&payload).expect("row JSON must parse");
        let rows = v.get("rows").and_then(Json::as_arr).expect("rows array");
        assert_eq!(
            rows[0].get("algo").and_then(Json::as_str),
            Some("bakery-rec-nofence")
        );
        assert_eq!(rows[0].get("max_crashes").and_then(Json::as_u64), Some(1));
        assert_eq!(
            rows[0].get("crash_in_shrunk").and_then(Json::as_bool),
            Some(true)
        );
    }
}

//! Experiment implementations (shared by binaries, tests and benches).

use std::sync::Arc;

use tpa_adversary::{bounds, Adaptivity, Config, Construction, Outcome};
use tpa_algos::lock_by_name;
use tpa_objects::lemma9::{self, TicketObject};
use tpa_obs::Probe;
use tpa_tso::machine::NextEvent;
use tpa_tso::{Directive, Machine, ProcId, System};

use crate::report::{json_object, ToJson};

/// Runs the adversarial construction for a named lock.
///
/// # Errors
///
/// Returns a description for unknown locks or initialisation failures.
pub fn construction_outcome(
    algo: &str,
    n: usize,
    max_rounds: usize,
    check_invariants: bool,
) -> Result<Outcome, String> {
    construction_outcome_probed(algo, n, max_rounds, check_invariants, None)
}

/// As [`construction_outcome`], with an optional telemetry probe attached
/// to the construction: round/phase/erasure events, the end-of-run
/// passage histograms, and the stop-reason mark (per-step simulator
/// events stay off — a construction executes millions of them).
///
/// # Errors
///
/// Returns a description for unknown locks or initialisation failures.
pub fn construction_outcome_probed(
    algo: &str,
    n: usize,
    max_rounds: usize,
    check_invariants: bool,
    probe: Option<Arc<dyn Probe>>,
) -> Result<Outcome, String> {
    let lock = lock_by_name(algo, n, 1).ok_or_else(|| format!("unknown lock `{algo}`"))?;
    // With invariant checking we also use the slow replay-validated
    // erasure (maximum fidelity); sweeps use the differentially-tested
    // fast backend.
    let cfg = Config {
        max_rounds,
        check_invariants,
        fast_erasure: !check_invariants,
        ..Config::default()
    };
    let mut construction = Construction::new(&lock, cfg).map_err(|e| e.to_string())?;
    if let Some(probe) = probe {
        construction.attach_probe(probe, false);
    }
    Ok(construction.run())
}

/// One row of the T1 table: a construction round against Theorem 3.
#[derive(Clone, Debug)]
pub struct T1Row {
    /// Algorithm name.
    pub algo: String,
    /// Processes.
    pub n: usize,
    /// Induction round (`H_round`).
    pub round: usize,
    /// Measured `|Act|` at the end of the round.
    pub act_measured: usize,
    /// `ln` of Theorem 3's worst-case lower bound on `|Act(H_i)|` given
    /// the measured `ℓ_i` (negative ⇒ the bound is vacuous at this size).
    pub theorem3_ln_bound: f64,
    /// Measured `ℓ_i` (critical events per active process).
    pub criticals_per_active: u64,
    /// Read-phase iterations (`s`).
    pub read_iters: usize,
    /// Write-phase iterations (`t`).
    pub write_iters: usize,
    /// Regularization criticals (`m`).
    pub reg_criticals: usize,
}

/// T1: run the construction per algorithm × N and compare the measured
/// active-set decay with the Theorem 3 analytic bound.
pub fn t1_rows(algos: &[&str], ns: &[usize], max_rounds: usize) -> Vec<T1Row> {
    let mut rows = Vec::new();
    for algo in algos {
        for &n in ns {
            let Ok(out) = construction_outcome(algo, n, max_rounds, false) else {
                continue;
            };
            let ln_n = (n as f64).ln();
            for r in &out.rounds {
                rows.push(T1Row {
                    algo: (*algo).to_owned(),
                    n,
                    round: r.round,
                    act_measured: r.act_end,
                    theorem3_ln_bound: bounds::theorem3_act_ln(
                        ln_n,
                        r.criticals_per_active as f64,
                        r.round as f64,
                    ),
                    criticals_per_active: r.criticals_per_active,
                    read_iters: r.read_iters,
                    write_iters: r.write_iters,
                    reg_criticals: r.reg_criticals,
                });
            }
        }
    }
    rows
}

/// One row of the T2/T3 corollary sweeps.
#[derive(Clone, Debug)]
pub struct CorollaryRow {
    /// `log₂ N`.
    pub log2_n: f64,
    /// `log₂ log₂ N` (T2's x-axis) — for T3 read `log₂ log₂ log₂ N`.
    pub loglog: f64,
    /// Largest feasible `i` per the Theorem 1 inequality.
    pub max_feasible_i: u64,
    /// The paper's guaranteed feasible point
    /// (`(1/3c)·loglog N` resp. `(1/c)(logloglog N − 1)`).
    pub guaranteed_point: f64,
}

/// T2: the Corollary 2 sweep for linear adaptivity `f(i) = c·i`.
pub fn t2_rows(c: f64, log2_ns: &[f64]) -> Vec<CorollaryRow> {
    log2_ns
        .iter()
        .map(|&log2_n| {
            let ln_n = bounds::ln_of_pow2(log2_n);
            CorollaryRow {
                log2_n,
                loglog: log2_n.log2(),
                max_feasible_i: bounds::max_feasible_i(ln_n, Adaptivity::Linear { c }, 1 << 22),
                guaranteed_point: bounds::corollary2_point(ln_n, c),
            }
        })
        .collect()
}

/// T3: the Corollary 3 sweep for exponential adaptivity `f(i) = 2^(c·i)`.
pub fn t3_rows(c: f64, log2_ns: &[f64]) -> Vec<CorollaryRow> {
    log2_ns
        .iter()
        .map(|&log2_n| {
            let ln_n = bounds::ln_of_pow2(log2_n);
            CorollaryRow {
                log2_n,
                loglog: log2_n.log2().log2(),
                max_feasible_i: bounds::max_feasible_i(
                    ln_n,
                    Adaptivity::Exponential { c },
                    1 << 22,
                ),
                guaranteed_point: bounds::corollary3_point(ln_n, c),
            }
        })
        .collect()
}

/// One row of the T4 separation table.
#[derive(Clone, Debug)]
pub struct T4Row {
    /// Algorithm name.
    pub algo: String,
    /// Total processes the instance is built for.
    pub n: usize,
    /// Contention: how many processes actually run.
    pub k: usize,
    /// Worst per-passage fence count across the k participants.
    pub fences_max: u64,
    /// Mean per-passage fence count.
    pub fences_avg: f64,
    /// Worst per-passage DSM RMRs.
    pub rmr_dsm_max: u64,
    /// Worst per-passage CC write-back RMRs.
    pub rmr_wb_max: u64,
    /// Measured maximum point contention across the passages (the
    /// paper's strongest contention gauge; see `tpa_tso::analysis`).
    pub point_contention: usize,
    /// Measured maximum interval contention across the passages.
    pub interval_contention: usize,
}

/// Drives processes `0..k` of a system round-robin (lazy commits) until
/// each completes `passages` passages; processes `k..n` never run, so the
/// total contention is exactly `k`.
///
/// # Errors
///
/// Returns a description if the budget is exhausted or a step fails.
pub fn run_contention_subset(
    system: &dyn System,
    k: usize,
    passages: usize,
    max_steps: usize,
) -> Result<Machine, String> {
    let mut machine = Machine::new(&system);
    let mut steps = 0;
    loop {
        let mut done = true;
        for i in 0..k {
            let p = ProcId(i as u32);
            if machine.passages_completed(p) >= passages
                || machine.peek_next(p) == NextEvent::Halted
            {
                continue;
            }
            done = false;
            if steps >= max_steps {
                return Err(format!("budget exhausted after {steps} steps"));
            }
            machine
                .step(Directive::Issue(p))
                .map_err(|e| e.to_string())?;
            steps += 1;
        }
        if done {
            return Ok(machine);
        }
    }
}

/// T4: per-algorithm per-passage costs as contention `k` sweeps at fixed
/// `n` — the adaptive-vs-fence separation table.
pub fn t4_rows(algos: &[&str], n: usize, ks: &[usize]) -> Vec<T4Row> {
    let mut rows = Vec::new();
    for algo in algos {
        for &k in ks {
            if k > n {
                continue;
            }
            let Some(lock) = lock_by_name(algo, n, 1) else {
                continue;
            };
            let Ok(machine) = run_contention_subset(lock.as_ref(), k, 1, 30_000_000) else {
                continue;
            };
            let mut fences_max = 0u64;
            let mut fences_sum = 0u64;
            let mut rmr_dsm_max = 0u64;
            let mut rmr_wb_max = 0u64;
            let mut count = 0u64;
            for i in 0..k {
                for span in &machine.metrics().proc(ProcId(i as u32)).completed {
                    fences_max = fences_max.max(span.counters.fences);
                    fences_sum += span.counters.fences;
                    rmr_dsm_max = rmr_dsm_max.max(span.counters.rmr_dsm);
                    rmr_wb_max = rmr_wb_max.max(span.counters.rmr_wb);
                    count += 1;
                }
            }
            let mut point_contention = 0;
            let mut interval_contention = 0;
            for span in tpa_tso::analysis::spans(machine.log()) {
                let c = tpa_tso::analysis::contention(machine.log(), span);
                point_contention = point_contention.max(c.point);
                interval_contention = interval_contention.max(c.interval);
            }
            rows.push(T4Row {
                algo: (*algo).to_owned(),
                n,
                k,
                fences_max,
                fences_avg: fences_sum as f64 / count.max(1) as f64,
                rmr_dsm_max,
                rmr_wb_max,
                point_contention,
                interval_contention,
            });
        }
    }
    rows
}

/// One row of the T5 (Lemma 9) table.
#[derive(Clone, Debug)]
pub struct T5Row {
    /// Backing object.
    pub object: String,
    /// Processes (= tickets).
    pub n: usize,
    /// Worst fences of a bare ticket operation.
    pub bare_fences: u64,
    /// Worst fences of a full reduction passage.
    pub mutex_fences: u64,
    /// Additive fence gap (Lemma 9 bounds this by a constant).
    pub fence_gap: i64,
    /// Worst DSM RMRs of a bare operation.
    pub bare_rmr: u64,
    /// Worst DSM RMRs of a reduction passage.
    pub mutex_rmr: u64,
    /// Additive RMR gap.
    pub rmr_gap: i64,
}

/// T5: the Lemma 9 cost-transfer table over all three objects.
pub fn t5_rows(ns: &[usize]) -> Vec<T5Row> {
    let mut rows = Vec::new();
    for object in TicketObject::ALL {
        for &n in ns {
            let Ok(row) = lemma9::measure(object, n) else {
                continue;
            };
            rows.push(T5Row {
                object: object.name().to_owned(),
                n,
                bare_fences: row.bare.fences,
                mutex_fences: row.mutex.fences,
                fence_gap: row.fence_gap(),
                bare_rmr: row.bare.rmr_dsm,
                mutex_rmr: row.mutex.rmr_dsm,
                rmr_gap: row.rmr_gap(),
            });
        }
    }
    rows
}

/// One row of the T6 feasibility frontier.
#[derive(Clone, Debug)]
pub struct T6Row {
    /// Adaptivity family description.
    pub family: String,
    /// `log₂ N`.
    pub log2_n: f64,
    /// Largest feasible `i` (fences the lower bound forces).
    pub max_feasible_i: u64,
}

/// T6: the feasibility frontier across adaptivity families × N grid.
pub fn t6_rows(log2_ns: &[f64]) -> Vec<T6Row> {
    let families: Vec<(String, Adaptivity)> = vec![
        ("f(k)=1·k".into(), Adaptivity::Linear { c: 1.0 }),
        ("f(k)=4·k".into(), Adaptivity::Linear { c: 4.0 }),
        ("f(k)=1·k^2".into(), Adaptivity::Poly { c: 1.0, a: 2.0 }),
        ("f(k)=2^(1·k)".into(), Adaptivity::Exponential { c: 1.0 }),
        ("f(k)=2·log2(k+1)".into(), Adaptivity::Log { c: 2.0 }),
        ("f(k)=8".into(), Adaptivity::Constant(8.0)),
    ];
    let mut rows = Vec::new();
    for (name, f) in &families {
        for &log2_n in log2_ns {
            let ln_n = bounds::ln_of_pow2(log2_n);
            rows.push(T6Row {
                family: name.clone(),
                log2_n,
                max_feasible_i: bounds::max_feasible_i(ln_n, *f, 1 << 22),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_produces_rows_for_the_tournament() {
        let rows = t1_rows(&["tournament"], &[32], 8);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.algo == "tournament"));
        // ℓ_i grows round over round.
        for w in rows.windows(2) {
            assert!(w[1].criticals_per_active >= w[0].criticals_per_active);
        }
    }

    #[test]
    fn t2_grows_with_n() {
        let rows = t2_rows(1.0, &[64.0, 4096.0]);
        assert!(rows[1].max_feasible_i > rows[0].max_feasible_i);
        for r in &rows {
            assert!(r.max_feasible_i as f64 >= r.guaranteed_point.floor());
        }
    }

    #[test]
    fn t4_contention_subset_runs_exactly_k() {
        let lock = lock_by_name("bakery", 8, 1).unwrap();
        let m = run_contention_subset(lock.as_ref(), 3, 1, 1_000_000).unwrap();
        for i in 0..3u32 {
            assert_eq!(m.passages_completed(ProcId(i)), 1);
        }
        for i in 3..8u32 {
            assert_eq!(m.passages_completed(ProcId(i)), 0);
        }
    }

    #[test]
    fn t4_separation_shape() {
        // The adaptive ticket lock's fences grow with k; bakery's stay
        // constant.
        let rows = t4_rows(&["ticketq", "bakery"], 16, &[1, 8]);
        let get = |algo: &str, k: usize| {
            rows.iter()
                .find(|r| r.algo == algo && r.k == k)
                .unwrap()
                .fences_max
        };
        assert!(get("ticketq", 8) > get("ticketq", 1));
        assert_eq!(get("bakery", 8), get("bakery", 1));
    }

    #[test]
    fn t5_gaps_are_constant() {
        for row in t5_rows(&[1, 4]) {
            assert!(row.fence_gap >= 0 && row.fence_gap <= 6, "{row:?}");
        }
    }

    #[test]
    fn t6_orders_families_sanely() {
        let rows = t6_rows(&[65_536.0]);
        let get = |fam: &str| {
            rows.iter()
                .find(|r| r.family == fam)
                .unwrap()
                .max_feasible_i
        };
        // Slower-growing adaptivity functions admit more forced fences.
        assert!(get("f(k)=2·log2(k+1)") >= get("f(k)=1·k"));
        assert!(get("f(k)=1·k") >= get("f(k)=1·k^2"));
        assert!(get("f(k)=1·k^2") >= get("f(k)=2^(1·k)"));
    }
}

/// One row of the T7 RMR-accounting comparison.
#[derive(Clone, Debug)]
pub struct T7Row {
    /// Algorithm name.
    pub algo: String,
    /// Contention.
    pub k: usize,
    /// Worst per-passage RMRs under the DSM model.
    pub rmr_dsm: u64,
    /// Worst per-passage RMRs under CC write-through.
    pub rmr_wt: u64,
    /// Worst per-passage RMRs under CC write-back.
    pub rmr_wb: u64,
    /// Worst per-passage events, for scale.
    pub events: u64,
}

impl ToJson for T1Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("round", self.round.to_json()),
            ("act_measured", self.act_measured.to_json()),
            ("theorem3_ln_bound", self.theorem3_ln_bound.to_json()),
            ("criticals_per_active", self.criticals_per_active.to_json()),
            ("read_iters", self.read_iters.to_json()),
            ("write_iters", self.write_iters.to_json()),
            ("reg_criticals", self.reg_criticals.to_json()),
        ])
    }
}

impl ToJson for CorollaryRow {
    fn to_json(&self) -> String {
        json_object(&[
            ("log2_n", self.log2_n.to_json()),
            ("loglog", self.loglog.to_json()),
            ("max_feasible_i", self.max_feasible_i.to_json()),
            ("guaranteed_point", self.guaranteed_point.to_json()),
        ])
    }
}

impl ToJson for T4Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("algo", self.algo.to_json()),
            ("n", self.n.to_json()),
            ("k", self.k.to_json()),
            ("fences_max", self.fences_max.to_json()),
            ("fences_avg", self.fences_avg.to_json()),
            ("rmr_dsm_max", self.rmr_dsm_max.to_json()),
            ("rmr_wb_max", self.rmr_wb_max.to_json()),
            ("point_contention", self.point_contention.to_json()),
            ("interval_contention", self.interval_contention.to_json()),
        ])
    }
}

impl ToJson for T5Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("object", self.object.to_json()),
            ("n", self.n.to_json()),
            ("bare_fences", self.bare_fences.to_json()),
            ("mutex_fences", self.mutex_fences.to_json()),
            ("fence_gap", self.fence_gap.to_json()),
            ("bare_rmr", self.bare_rmr.to_json()),
            ("mutex_rmr", self.mutex_rmr.to_json()),
            ("rmr_gap", self.rmr_gap.to_json()),
        ])
    }
}

impl ToJson for T6Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("family", self.family.to_json()),
            ("log2_n", self.log2_n.to_json()),
            ("max_feasible_i", self.max_feasible_i.to_json()),
        ])
    }
}

impl ToJson for T7Row {
    fn to_json(&self) -> String {
        json_object(&[
            ("algo", self.algo.to_json()),
            ("k", self.k.to_json()),
            ("rmr_dsm", self.rmr_dsm.to_json()),
            ("rmr_wt", self.rmr_wt.to_json()),
            ("rmr_wb", self.rmr_wb.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

/// T7 (ablation): how the three RMR accounting models the paper covers
/// (DSM, CC write-through, CC write-back) price the same executions.
pub fn t7_rows(algos: &[&str], n: usize, ks: &[usize]) -> Vec<T7Row> {
    let mut rows = Vec::new();
    for algo in algos {
        for &k in ks {
            if k > n {
                continue;
            }
            let Some(lock) = lock_by_name(algo, n, 1) else {
                continue;
            };
            let Ok(machine) = run_contention_subset(lock.as_ref(), k, 1, 30_000_000) else {
                continue;
            };
            let mut row = T7Row {
                algo: (*algo).to_owned(),
                k,
                rmr_dsm: 0,
                rmr_wt: 0,
                rmr_wb: 0,
                events: 0,
            };
            for i in 0..k {
                for span in &machine.metrics().proc(ProcId(i as u32)).completed {
                    row.rmr_dsm = row.rmr_dsm.max(span.counters.rmr_dsm);
                    row.rmr_wt = row.rmr_wt.max(span.counters.rmr_wt);
                    row.rmr_wb = row.rmr_wb.max(span.counters.rmr_wb);
                    row.events = row.events.max(span.counters.events);
                }
            }
            rows.push(row);
        }
    }
    rows
}

//! H1(a) — the premise: fences are expensive.
//!
//! Measures the per-operation cost of plain stores, release stores,
//! sequentially consistent stores, explicit `fence(SeqCst)` (x86:
//! `MFENCE`), and read-modify-writes — the instruction classes the
//! paper's fence-complexity metric counts.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fence_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fence_cost");
    let cell = AtomicU64::new(0);

    group.bench_function("store_relaxed", |b| {
        b.iter(|| cell.store(black_box(1), Ordering::Relaxed))
    });
    group.bench_function("store_release", |b| {
        b.iter(|| cell.store(black_box(1), Ordering::Release))
    });
    group.bench_function("store_seqcst", |b| {
        b.iter(|| cell.store(black_box(1), Ordering::SeqCst))
    });
    group.bench_function("store_release_plus_mfence", |b| {
        b.iter(|| {
            cell.store(black_box(1), Ordering::Release);
            fence(Ordering::SeqCst);
        })
    });
    group.bench_function("rmw_swap_acqrel", |b| {
        b.iter(|| cell.swap(black_box(1), Ordering::AcqRel))
    });
    group.bench_function("rmw_fetch_add_seqcst", |b| {
        b.iter(|| cell.fetch_add(black_box(1), Ordering::SeqCst))
    });
    group.bench_function("load_acquire", |b| {
        b.iter(|| black_box(cell.load(Ordering::Acquire)))
    });
    group.finish();
}

criterion_group!(benches, bench_fence_cost);
criterion_main!(benches);

//! H1(b) — real locks: throughput and fence budgets, adaptive vs
//! non-adaptive, across thread counts.
//!
//! For every lock of the hardware portfolio, measures the wall time of a
//! fixed number of lock-protected critical sections executed by `t`
//! threads (`t ∈ {1, 2, 4}` clamped to the host), and reports the fence
//! count per acquire via a one-shot calibration. `parking_lot::Mutex` is
//! included as an industrial baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpa_algos::hw::{all_hw_locks, RawLock};

const OPS_PER_THREAD: usize = 2_000;

fn hammer_once(lock: &Arc<dyn RawLock>, threads: usize) -> std::time::Duration {
    let counter = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            s.spawn(move |_| {
                for _ in 0..OPS_PER_THREAD {
                    let token = lock.acquire(tid);
                    counter.fetch_add(1, Ordering::Relaxed);
                    lock.release(tid, token);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        counter.load(Ordering::Relaxed) as usize,
        threads * OPS_PER_THREAD
    );
    start.elapsed()
}

fn bench_hw_locks(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    let thread_counts: Vec<usize> = [1, 2, 4].iter().copied().filter(|t| *t <= cores).collect();

    let mut group = c.benchmark_group("hw_locks");
    group.sample_size(10);

    for &threads in &thread_counts {
        for lock in all_hw_locks(threads.max(2)) {
            group.bench_with_input(
                BenchmarkId::new(lock.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let mut total = std::time::Duration::ZERO;
                        for _ in 0..iters {
                            total += hammer_once(&lock, threads);
                        }
                        total
                    })
                },
            );
        }
        // Industrial baseline.
        let std_lock = Arc::new(parking_lot::Mutex::new(0u64));
        group.bench_with_input(
            BenchmarkId::new("parking_lot", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let start = Instant::now();
                        crossbeam::scope(|s| {
                            for _ in 0..threads {
                                let lock = Arc::clone(&std_lock);
                                s.spawn(move |_| {
                                    for _ in 0..OPS_PER_THREAD {
                                        *lock.lock() += 1;
                                    }
                                });
                            }
                        })
                        .unwrap();
                        total += start.elapsed();
                    }
                    total
                })
            },
        );
    }
    group.finish();

    // Print fence budgets once (solo acquire/release), for the report.
    println!("\nfences per solo acquire+release:");
    for lock in all_hw_locks(4) {
        let before = lock.fences();
        let token = lock.acquire(0);
        lock.release(0, token);
        println!("  {:16} {}", lock.name(), lock.fences() - before);
    }
}

criterion_group!(benches, bench_hw_locks);
criterion_main!(benches);

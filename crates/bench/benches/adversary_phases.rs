//! Adversary micro-benchmarks: cost of a full construction per lock and
//! the erasure-replay ablation (DESIGN.md "design decisions to ablate").

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpa_adversary::{Config, ConflictGraph, Construction};
use tpa_algos::lock_by_name;
use tpa_tso::sched::XorShift;
use tpa_tso::{erase, Directive, Machine, ProcId};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for (algo, n) in [("tournament", 256usize), ("splitter", 128), ("bakery", 64)] {
        group.bench_with_input(BenchmarkId::new(algo, n), &n, |b, &n| {
            b.iter(|| {
                let lock = lock_by_name(algo, n, 1).unwrap();
                let cfg = Config {
                    max_rounds: 6,
                    ..Config::default()
                };
                Construction::new(&lock, cfg)
                    .unwrap()
                    .run()
                    .rounds_completed()
            })
        });
    }
    // Invariant-checking overhead ablation.
    for check in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("tournament_n128_check", check),
            &check,
            |b, &check| {
                b.iter(|| {
                    let lock = lock_by_name("tournament", 128, 1).unwrap();
                    let cfg = Config {
                        max_rounds: 6,
                        check_invariants: check,
                        ..Config::default()
                    };
                    Construction::new(&lock, cfg)
                        .unwrap()
                        .run()
                        .rounds_completed()
                })
            },
        );
    }
    group.finish();
}

fn bench_erasure(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_replay");
    group.sample_size(10);
    for n in [64usize, 256] {
        // Build an execution: every process enters and performs its first
        // reads; then erase half.
        let lock = lock_by_name("tournament", n, 1).unwrap();
        let mut machine = Machine::new(&lock);
        for i in 0..n {
            machine.step(Directive::Issue(ProcId(i as u32))).unwrap();
        }
        for i in 0..n {
            machine.run_until_special(ProcId(i as u32), 10_000).unwrap();
        }
        let erased: BTreeSet<ProcId> = (0..n as u32 / 2).map(ProcId).collect();
        group.bench_with_input(BenchmarkId::new("erase_half", n), &n, |b, _| {
            b.iter(|| {
                let out = erase::erase(&lock, &machine, &erased).unwrap();
                assert!(out.projection_identical);
                out.machine.log().len()
            })
        });
    }
    group.finish();
}

fn bench_turan(c: &mut Criterion) {
    // Ablation: Turán min-degree greedy vs first-fit, on random conflict
    // graphs of the density the write phase produces.
    let mut group = c.benchmark_group("turan_ablation");
    let mut rng = XorShift::new(7);
    let n = 512usize;
    let mut graph = ConflictGraph::new((0..n as u32).map(ProcId));
    for _ in 0..2 * n {
        graph.add_edge(ProcId(rng.below(n) as u32), ProcId(rng.below(n) as u32));
    }
    group.bench_function("min_degree_greedy", |b| {
        b.iter(|| graph.independent_set().len())
    });
    group.bench_function("first_fit", |b| {
        b.iter(|| graph.independent_set_first_fit().len())
    });
    group.finish();

    let greedy = graph.independent_set().len();
    let ff = graph.independent_set_first_fit().len();
    println!("turán ablation on G(512, 1024 edges): min-degree {greedy}, first-fit {ff}");
}

criterion_group!(benches, bench_construction, bench_erasure, bench_turan);
criterion_main!(benches);

//! Simulator micro-benchmarks: event throughput of the TSO machine and
//! end-to-end passage cost per simulated lock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpa_algos::all_locks;
use tpa_tso::sched::{run_round_robin, CommitPolicy};
use tpa_tso::scripted::{Instr, ScriptSystem};
use tpa_tso::{Directive, Machine, ProcId};

fn bench_machine_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_steps");
    group.throughput(Throughput::Elements(1));
    // A tight read/write loop on one variable.
    let sys = ScriptSystem::new(1, 1, |_| {
        vec![
            Instr::Write { var: 0, value: 1 },
            Instr::Read { var: 0, reg: 0 },
            Instr::Jump { target: 0 },
        ]
    });
    group.bench_function("issue_write_then_buffer_read", |b| {
        let mut m = Machine::new(&sys);
        b.iter(|| m.step(Directive::Issue(ProcId(0))).unwrap());
    });
    group.finish();
}

/// The telemetry fast path: `Machine::step` with no probe attached (one
/// never-taken branch) vs a `NullProbe` (the branch plus a dynamic call
/// into empty inlined methods). Both should be indistinguishable from
/// the bare `machine_steps` number — the zero-cost claim in DESIGN.md.
fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_overhead");
    group.throughput(Throughput::Elements(1));
    let sys = ScriptSystem::new(1, 1, |_| {
        vec![
            Instr::Write { var: 0, value: 1 },
            Instr::Read { var: 0, reg: 0 },
            Instr::Jump { target: 0 },
        ]
    });
    group.bench_function("no_probe", |b| {
        let mut m = Machine::new(&sys);
        b.iter(|| m.step(Directive::Issue(ProcId(0))).unwrap());
    });
    group.bench_function("null_probe", |b| {
        let mut m = Machine::new(&sys);
        m.attach_probe(std::sync::Arc::new(tpa_obs::NullProbe));
        b.iter(|| m.step(Directive::Issue(ProcId(0))).unwrap());
    });
    group.finish();
}

fn bench_lock_passages(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_lock_passages");
    group.sample_size(10);
    for n in [8usize, 32] {
        for lock in all_locks(n, 1) {
            group.bench_with_input(BenchmarkId::new(lock.name().to_owned(), n), &n, |b, _| {
                b.iter(|| {
                    let (m, stats) =
                        run_round_robin(lock.as_ref(), CommitPolicy::Lazy, 50_000_000).unwrap();
                    assert!(stats.all_halted);
                    m.log().len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_steps,
    bench_probe_overhead,
    bench_lock_passages
);
criterion_main!(benches);

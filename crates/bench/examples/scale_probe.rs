//! One-off scale probe: how far the fast-erasure backend pushes the
//! construction on the tournament lock.
use std::time::Instant;
use tpa_adversary::{Config, Construction};

fn main() {
    for n in [4096usize, 8192, 16384] {
        let lock = tpa_algos::lock_by_name("tournament", n, 1).unwrap();
        let cfg = Config {
            max_rounds: 16,
            fast_erasure: true,
            ..Default::default()
        };
        let t = Instant::now();
        let out = Construction::new(&lock, cfg).unwrap().run();
        println!(
            "tournament n={n:6}: forced {:2} fences (contention {:2}) in {:?}",
            out.fences_forced(),
            out.fences_forced() + 1,
            t.elapsed()
        );
    }
}

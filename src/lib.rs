//! # tpa — *The Price of being Adaptive*, reproduced in Rust
//!
//! An executable reproduction of Ben-Baruch & Hendler, PODC 2015: adaptive
//! mutual-exclusion algorithms (and obstruction-free counters, stacks and
//! queues) in the TSO model cannot have constant fence complexity; with a
//! linear adaptivity function the fence complexity is `Ω(log log n)`.
//!
//! This umbrella crate re-exports the five building blocks:
//!
//! * [`tso`] — the operational TSO simulator (write buffers, fences,
//!   RMR/critical-event accounting, awareness sets, erasure);
//! * [`algos`] — mutual-exclusion algorithms, simulated and real-hardware;
//! * [`objects`] — counters/stacks/queues and the Section 5 reductions;
//! * [`adversary`] — the paper's lower-bound construction and analytic
//!   bounds;
//! * [`check`] — the bounded-exhaustive schedule explorer, swarm fuzzer,
//!   and counterexample shrinker that verify the portfolio;
//! * [`obs`] — the zero-cost telemetry layer (structured probes, JSONL
//!   run logs, Perfetto trace export) the other four emit into.
//!
//! ```
//! use tpa::prelude::*;
//!
//! // Measure a bakery passage: constant fences, Θ(n) work — the
//! // non-adaptive escape hatch from the paper's lower bound.
//! let lock = tpa::algos::sim::bakery::BakeryLock::new(8, 1);
//! let (machine, stats) = run_round_robin(&lock, CommitPolicy::Lazy, 1_000_000)?;
//! assert!(stats.all_halted);
//! let worst = machine.metrics().max_completed(|p| p.counters.fences).unwrap();
//! assert_eq!(worst, 3);
//! # Ok::<(), tpa::tso::StepError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tpa_adversary as adversary;
pub use tpa_algos as algos;
pub use tpa_check as check;
pub use tpa_objects as objects;
pub use tpa_obs as obs;
pub use tpa_tso as tso;

/// Convenient glob import for examples and quick experiments.
pub mod prelude {
    pub use tpa_adversary::{Adaptivity, Config, Construction, StopReason};
    pub use tpa_algos::{all_locks, lock_by_name};
    pub use tpa_check::{
        crash_invariants, Checker, ExploreConfig, IncompleteReason, Report, SwarmConfig, Verdict,
    };
    pub use tpa_objects::{ArrayQueue, CasCounter, OneTimeMutex, TreiberStack};
    pub use tpa_obs::{AdvEvent, CollectProbe, NullProbe, Probe, Recorder};
    pub use tpa_tso::sched::{run_random, run_round_robin, CommitPolicy};
    pub use tpa_tso::{
        Directive, Machine, MemoryModel, Op, Outcome, ProcId, Program, System, Value, VarId,
        VarSpec,
    };
}

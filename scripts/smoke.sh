#!/usr/bin/env bash
# Smoke check: everything a reviewer needs green before merging.
#
#   scripts/smoke.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite (offline, as CI does)
#   2. clippy across the whole workspace, warnings promoted to errors
#   3. the aggregated experiment harness in --quick mode
#   4. the exhaustive-explorer smoke sweep, timed, on 4 worker threads
#      (n = 2, incl. the bakery-nofence negative control — nonzero exit
#      if it slips by)
#   5. telemetry: rerun the explorer with TPA_OBS_* set and validate the
#      JSONL run log and the Perfetto trace with obs_validate
#   6. formatting check
#
# Stages 3-5 redirect BENCH_check.json to a scratch dir so a smoke run
# never clobbers the committed benchmark record.
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

echo "== [1/6] tier-1: build + tests =="
cargo build --offline --release --workspace
cargo test --offline -q --workspace

echo "== [2/6] clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== [3/6] experiment harness (quick) =="
TPA_BENCH_JSON="$SCRATCH/bench_report_all.json" \
    cargo run --offline --release -p tpa-bench --bin report_all -- --quick

echo "== [4/6] parallel explorer smoke (quick, 4 threads, timed) =="
time TPA_BENCH_JSON="$SCRATCH/bench_c1.json" \
    cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick --threads 4

echo "== [5/6] telemetry: JSONL + Perfetto export, schema-validated =="
TPA_BENCH_JSON="$SCRATCH/bench_obs.json" \
TPA_OBS_JSONL="$SCRATCH/run.jsonl" \
TPA_OBS_TRACE="$SCRATCH/trace.json" \
    cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick --threads 4
test -s "$SCRATCH/run.jsonl" || { echo "telemetry run log missing"; exit 1; }
test -s "$SCRATCH/trace.json" || { echo "telemetry trace missing"; exit 1; }
cargo run --offline --release -p tpa-bench --bin obs_validate -- \
    "$SCRATCH/run.jsonl" "$SCRATCH/trace.json"

echo "== [6/6] cargo fmt --check =="
cargo fmt --all -- --check

echo "smoke: all green"

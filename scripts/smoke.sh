#!/usr/bin/env bash
# Smoke check: everything a reviewer needs green before merging.
#
#   scripts/smoke.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite (offline, as CI does)
#   2. the aggregated experiment harness in --quick mode
#   3. the exhaustive-explorer smoke sweep (n = 2, incl. the
#      bakery-nofence negative control — nonzero exit if it slips by)
#   4. formatting check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/4] tier-1: build + tests =="
cargo build --offline --release --workspace
cargo test --offline -q --workspace

echo "== [2/4] experiment harness (quick) =="
cargo run --offline --release -p tpa-bench --bin report_all -- --quick

echo "== [3/4] explorer smoke (quick) =="
cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick

echo "== [4/4] cargo fmt --check =="
cargo fmt --all -- --check

echo "smoke: all green"

#!/usr/bin/env bash
# Smoke check: everything a reviewer needs green before merging.
#
#   scripts/smoke.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite (offline, as CI does)
#   2. clippy across the whole workspace, warnings promoted to errors
#   3. the aggregated experiment harness in --quick mode
#   4. the exhaustive-explorer smoke sweep, timed, on 4 worker threads
#      (n = 2, incl. the bakery-nofence negative control — nonzero exit
#      if it slips by)
#   5. formatting check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/5] tier-1: build + tests =="
cargo build --offline --release --workspace
cargo test --offline -q --workspace

echo "== [2/5] clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== [3/5] experiment harness (quick) =="
cargo run --offline --release -p tpa-bench --bin report_all -- --quick

echo "== [4/5] parallel explorer smoke (quick, 4 threads, timed) =="
time cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick --threads 4

echo "== [5/5] cargo fmt --check =="
cargo fmt --all -- --check

echo "smoke: all green"

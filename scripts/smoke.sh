#!/usr/bin/env bash
# Smoke check: everything a reviewer needs green before merging.
#
#   scripts/smoke.sh
#
# Runs, in order:
#   1. tier-1: release build + full test suite (offline, as CI does)
#   2. clippy across the whole workspace, warnings promoted to errors
#   3. the aggregated experiment harness in --quick mode
#   4. the exhaustive-explorer smoke sweep, timed, on 4 worker threads
#      (n = 2, incl. the bakery-nofence negative control — nonzero exit
#      if it slips by)
#   5. symmetry + swarm resilience: the whole portfolio verified
#      bounded-exhaustively at n = 3 with symmetry reduction engaged,
#      then the swarm determinism pin across 1/2/4/8 worker threads
#   6. the bytecode VM, timed: the VM-vs-native differential oracle
#      (portfolio verdicts, witnesses and state counts pinned equal
#      through `Checker::vm(true)`) plus the per-step lockstep and
#      encode/decode property tests
#   7. the crash-fault model: exhaustive n = 2 with a crash budget of 1;
#      the crash-gated negative control (unfenced recoverable bakery)
#      must be caught and shrunk with its crash, and the telemetry it
#      emits — crash events included — must pass schema validation
#   8. telemetry: rerun the explorer with TPA_OBS_* set and validate the
#      JSONL run log and the Perfetto trace with obs_validate
#   9. formatting check
#
# Every stage runs under `timeout` (default 900 s per stage, override
# with SMOKE_STAGE_TIMEOUT) so a wedged stage fails the smoke run
# instead of hanging it — the same discipline the checker itself applies
# to its searches.
#
# Stages 3-8 redirect BENCH_check.json to a scratch dir so a smoke run
# never clobbers the committed benchmark record.
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

STAGE_TIMEOUT="${SMOKE_STAGE_TIMEOUT:-900}"
t() { timeout --foreground "$STAGE_TIMEOUT" "$@"; }

echo "== [1/9] tier-1: build + tests =="
t cargo build --offline --release --workspace
t cargo test --offline -q --workspace

echo "== [2/9] clippy (-D warnings) =="
t cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== [3/9] experiment harness (quick) =="
TPA_BENCH_JSON="$SCRATCH/bench_report_all.json" \
    t cargo run --offline --release -p tpa-bench --bin report_all -- --quick

echo "== [4/9] parallel explorer smoke (quick, 4 threads, timed) =="
time TPA_BENCH_JSON="$SCRATCH/bench_c1.json" \
    t cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick --threads 4

echo "== [5/9] symmetry reduction (n = 3 exhaustive) + multi-threaded swarm =="
time t cargo test --offline --release -q \
    --test lock_correctness exhaustive_exclusion_every_lock_n3_with_symmetry
time t cargo test --offline --release -q -p tpa-check \
    --test swarm_resilience swarm_witness_is_deterministic_across_thread_counts

echo "== [6/9] bytecode VM: differential oracle + lockstep properties (timed) =="
time t cargo test --offline --release -q -p tpa-check --test vm_differential
time t cargo test --offline --release -q --test vm_props

echo "== [7/9] crash-fault model (quick, negative control + telemetry) =="
TPA_OBS_JSONL="$SCRATCH/crash.jsonl" \
    t cargo run --offline --release -p tpa-bench --bin exp_r1_crash -- --quick --threads 4
test -s "$SCRATCH/crash.jsonl" || { echo "crash-model run log missing"; exit 1; }
t cargo run --offline --release -p tpa-bench --bin obs_validate -- "$SCRATCH/crash.jsonl"

echo "== [8/9] telemetry: JSONL + Perfetto export, schema-validated =="
TPA_BENCH_JSON="$SCRATCH/bench_obs.json" \
TPA_OBS_JSONL="$SCRATCH/run.jsonl" \
TPA_OBS_TRACE="$SCRATCH/trace.json" \
    t cargo run --offline --release -p tpa-bench --bin exp_c1_explorer -- --quick --threads 4
test -s "$SCRATCH/run.jsonl" || { echo "telemetry run log missing"; exit 1; }
test -s "$SCRATCH/trace.json" || { echo "telemetry trace missing"; exit 1; }
t cargo run --offline --release -p tpa-bench --bin obs_validate -- \
    "$SCRATCH/run.jsonl" "$SCRATCH/trace.json"

echo "== [9/9] cargo fmt --check =="
t cargo fmt --all -- --check

echo "smoke: all green"

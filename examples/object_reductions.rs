//! Section 5 live: counters, stacks and queues, and Algorithm 1's
//! one-time mutex built from each of them.
//!
//! ```sh
//! cargo run --release --example object_reductions
//! ```

use tpa::objects::counter::OP_FETCH_INC;
use tpa::objects::lemma9::{self, TicketObject};
use tpa::objects::queue::{OP_DEQUEUE, OP_ENQUEUE};
use tpa::objects::stack::{OP_POP, OP_PUSH};
use tpa::objects::{ObjectSystem, OpCall};
use tpa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A queue under a random TSO schedule: enqueue on even processes,
    // dequeue on odd ones.
    let sys = ObjectSystem::new(ArrayQueue::new(16), 4, |pid| {
        if pid.0 % 2 == 0 {
            vec![
                OpCall {
                    opcode: OP_ENQUEUE,
                    arg: 10 + u64::from(pid.0),
                },
                OpCall {
                    opcode: OP_ENQUEUE,
                    arg: 20 + u64::from(pid.0),
                },
            ]
        } else {
            vec![
                OpCall {
                    opcode: OP_DEQUEUE,
                    arg: 0
                };
                2
            ]
        }
    });
    let m = sys.run_random(7, CommitPolicy::Random { num: 64 }, 1_000_000)?;
    for p in 0..4u32 {
        println!("queue results for p{p}: {:?}", sys.results(&m, ProcId(p)));
    }

    // A pre-filled stack used as the paper's limited-use counter: pops
    // return 0, 1, 2, … like fetch&increment.
    let sys = ObjectSystem::new(TreiberStack::counter_prefill(6), 2, |_| {
        vec![
            OpCall {
                opcode: OP_POP,
                arg: 0
            };
            3
        ]
    });
    let m = sys.run_to_completion(CommitPolicy::Lazy, 100_000)?;
    let mut tickets: Vec<Value> = (0..2).flat_map(|p| sys.results(&m, ProcId(p))).collect();
    tickets.sort_unstable();
    println!("\nstack-as-counter tickets: {tickets:?}");

    // An actual CAS counter, with a push for symmetry.
    let sys = ObjectSystem::new(CasCounter::new(), 3, |_| {
        vec![
            OpCall {
                opcode: OP_FETCH_INC,
                arg: 0
            };
            2
        ]
    });
    let m = sys.run_to_completion(CommitPolicy::Lazy, 100_000)?;
    let mut tickets: Vec<Value> = (0..3).flat_map(|p| sys.results(&m, ProcId(p))).collect();
    tickets.sort_unstable();
    println!("counter tickets: {tickets:?}");
    let _ = OP_PUSH; // (push exercised in the test suite)

    // Algorithm 1: one-time mutual exclusion from each object, with the
    // Lemma 9 complexity transfer measured.
    println!("\nLemma 9 — object op vs one-time-mutex passage (worst fences):");
    for object in TicketObject::ALL {
        let row = lemma9::measure(object, 8).map_err(|e| e.to_string())?;
        println!(
            "  {:8} op: {:2} fences | mutex passage: {:2} fences | additive gap: {}",
            object.name(),
            row.bare.fences,
            row.mutex.fences,
            row.fence_gap()
        );
    }

    // And the reduction really is a mutual-exclusion lock: the adversary
    // runs on it directly.
    let reduction = OneTimeMutex::new(CasCounter::new(), 16);
    let outcome = Construction::new(&reduction, Config::default())
        .map_err(|e| e.to_string())?
        .run();
    println!(
        "\nadversary vs {}: {} rounds, stop: {}",
        outcome.algorithm,
        outcome.rounds_completed(),
        outcome.stop
    );
    Ok(())
}

//! Watch the lower-bound adversary work, phase by phase (Figure 1 live).
//!
//! ```sh
//! cargo run --release --example adversary_trace -- [algo] [n]
//! ```
//! Defaults: `tournament 64`. Try `splitter 256` to see an adaptive
//! read/write lock collapse after ~log log N rounds, or `bakery 32` to
//! see the regularization phase burn the whole active set (the
//! non-adaptive escape from the lower bound).

use tpa::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let algo = args.next().unwrap_or_else(|| "tournament".into());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let Some(lock) = lock_by_name(&algo, n, 1) else {
        eprintln!(
            "unknown algorithm `{algo}`; available: {:?}",
            all_locks(2, 1)
                .iter()
                .map(|l| l.name().to_owned())
                .collect::<Vec<_>>()
        );
        std::process::exit(1);
    };

    let cfg = Config {
        max_rounds: 16,
        check_invariants: true,
        ..Config::default()
    };
    let outcome = match Construction::new(lock.as_ref(), cfg) {
        Ok(c) => c.run(),
        Err(e) => {
            eprintln!("initialisation failed: {e}");
            std::process::exit(1);
        }
    };

    println!("adversary vs {} (n = {n})\n", outcome.algorithm);
    let mut round = 0;
    for phase in &outcome.phases {
        if phase.round != round {
            round = phase.round;
            println!("— round {round} (building H_{round}) —");
        }
        println!(
            "  {:16} {:32} |Act| {:>5} -> {:<5}",
            phase.label, phase.case_taken, phase.act_before, phase.act_after
        );
    }
    println!("\nper-round summary:");
    println!("  i    s    t    m    l_i  |Act| end  finisher");
    for r in &outcome.rounds {
        println!(
            "  {:<4} {:<4} {:<4} {:<4} {:<4} {:<10} {}",
            r.round,
            r.read_iters,
            r.write_iters,
            r.reg_criticals,
            r.criticals_per_active,
            r.act_end,
            r.finisher
        );
    }
    println!(
        "\nstopped: {} | fences forced in one passage: {} | total contention: {} | blocked erased: {}",
        outcome.stop,
        outcome.fences_forced(),
        outcome.fences_forced() + 1,
        outcome.blocked_erased
    );
}

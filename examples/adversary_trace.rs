//! Watch the lower-bound adversary work, phase by phase (Figure 1 live).
//!
//! ```sh
//! cargo run --release --example adversary_trace -- [algo] [n]
//! ```
//! Defaults: `tournament 64`. Try `splitter 256` to see an adaptive
//! read/write lock collapse after ~log log N rounds, or `bakery 32` to
//! see the regularization phase burn the whole active set (the
//! non-adaptive escape from the lower bound).
//!
//! The rendering consumes the construction's structured telemetry
//! stream (`tpa_obs::AdvEvent`) through a `CollectProbe` — the same
//! events a `Recorder` would land in a JSONL run log — rather than the
//! post-hoc `Outcome` tables.

use tpa::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let algo = args.next().unwrap_or_else(|| "tournament".into());
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let Some(lock) = lock_by_name(&algo, n, 1) else {
        eprintln!(
            "unknown algorithm `{algo}`; available: {:?}",
            all_locks(2, 1)
                .iter()
                .map(|l| l.name().to_owned())
                .collect::<Vec<_>>()
        );
        std::process::exit(1);
    };

    let cfg = Config {
        max_rounds: 16,
        check_invariants: true,
        ..Config::default()
    };
    let probe = std::sync::Arc::new(CollectProbe::new());
    let outcome = match Construction::new(lock.as_ref(), cfg) {
        Ok(mut c) => {
            c.attach_probe(probe.clone(), false);
            c.run()
        }
        Err(e) => {
            eprintln!("initialisation failed: {e}");
            std::process::exit(1);
        }
    };
    let collected = probe.take();

    println!("adversary vs {} (n = {n})\n", outcome.algorithm);
    for event in &collected.adv {
        match event {
            AdvEvent::RoundStart { round, active } => {
                println!("— round {round} (building H_{round}, |Act| = {active}) —");
            }
            AdvEvent::Phase {
                label,
                case,
                act_before,
                act_after,
                ..
            } => {
                println!("  {label:16} {case:32} |Act| {act_before:>5} -> {act_after:<5}");
            }
            AdvEvent::Erasure {
                erased,
                mode,
                active_after,
                ..
            } => {
                println!(
                    "  {:16} erased {erased} ({mode}), |Act| -> {active_after}",
                    "erasure"
                );
            }
            AdvEvent::Blocked { count, .. } => {
                println!(
                    "  {:16} {count} processes could not stay invisible",
                    "blocked"
                );
            }
            AdvEvent::RoundEnd {
                round,
                finisher,
                active,
                criticals_per_active,
                ..
            } => {
                println!(
                    "  H_{round} built: finisher p{finisher}, l_{round} = \
                     {criticals_per_active}, |Act| = {active}"
                );
            }
        }
    }

    println!("\nper-round summary (from the RoundEnd events):");
    println!("  i    s    t    m    l_i  |Act| end  finisher");
    for event in &collected.adv {
        if let AdvEvent::RoundEnd {
            round,
            finisher,
            active,
            criticals_per_active,
            read_iters,
            write_iters,
            reg_criticals,
        } = event
        {
            println!(
                "  {round:<4} {read_iters:<4} {write_iters:<4} {reg_criticals:<4} \
                 {criticals_per_active:<4} {active:<10} {finisher}"
            );
        }
    }

    println!("\nper-passage cost histograms (completed passages):");
    for h in &collected.histograms {
        let cells = h
            .buckets
            .iter()
            .map(|(label, count)| format!("{label}:{count}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {:20} count {:>4} max {:>6}  {cells}",
            h.label, h.count, h.max
        );
    }

    println!(
        "\nstopped: {} | fences forced in one passage: {} | total contention: {} | blocked erased: {}",
        outcome.stop,
        outcome.fences_forced(),
        outcome.fences_forced() + 1,
        outcome.blocked_erased
    );
}

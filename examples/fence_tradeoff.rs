//! The analytic trade-off, end to end: how many fences does Theorem 1
//! force, for which adaptivity functions, at which N?
//!
//! ```sh
//! cargo run --release --example fence_tradeoff
//! ```

use tpa::adversary::{bounds, Adaptivity};

fn main() {
    println!("Theorem 1 feasibility: f(i) <= N^(2^-f(i)) / (f(i)! * 4^(f(i)+2i))\n");

    // Corollary 1: for ANY constant fence budget c there is an N where an
    // adaptive algorithm must exceed it.
    println!("Corollary 1 — no O(1)-fence adaptive algorithm:");
    for c in [2u64, 4, 8] {
        let f = Adaptivity::Linear { c: 1.0 };
        let mut log2n = 4.0f64;
        while bounds::max_feasible_i(bounds::ln_of_pow2(log2n), f, 10_000) < c + 1 {
            log2n *= 2.0;
        }
        println!("  to force more than {c} fences on a 1·k-adaptive lock: N = 2^{log2n}");
    }

    // Corollary 2 vs Corollary 3: the double-log vs triple-log regimes.
    println!("\nforced fences by adaptivity family:");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "N", "f=k", "f=2^k", "f=8·log2k"
    );
    for j in [4u32, 6, 8, 10, 12, 14, 16, 18, 20] {
        let log2n = (1u64 << j) as f64;
        let ln_n = bounds::ln_of_pow2(log2n);
        println!(
            "{:>14} {:>12} {:>12} {:>12}",
            format!("2^{log2n}"),
            bounds::max_feasible_i(ln_n, Adaptivity::Linear { c: 1.0 }, 1 << 22),
            bounds::max_feasible_i(ln_n, Adaptivity::Exponential { c: 1.0 }, 1 << 22),
            bounds::max_feasible_i(ln_n, Adaptivity::Log { c: 8.0 }, 1 << 22),
        );
    }

    // The Theorem 3 active-set budget: why the construction needs
    // towering N for each extra fence.
    println!("\nTheorem 3 — ln |Act(H_i)| lower bound at N = 2^64 (f = k):");
    for i in 1..=6u32 {
        let l_i = i as f64; // for linear f with c = 1, l_i <= i
        let ln_act = bounds::theorem3_act_ln(bounds::ln_of_pow2(64.0), l_i, f64::from(i));
        println!(
            "  i = {i}: ln |Act| >= {ln_act:>10.2}  {}",
            if ln_act > 0.0 {
                "(witnesses guaranteed)"
            } else {
                "(vacuous at this N)"
            }
        );
    }
}

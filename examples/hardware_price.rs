//! The price, on silicon: fence budgets and wall-clock costs of real
//! atomics-based locks.
//!
//! ```sh
//! cargo run --release --example hardware_price -- [threads] [ops]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tpa::algos::hw::all_hw_locks;

fn main() {
    let mut args = std::env::args().skip(1);
    let max_threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(4)
    });
    let ops: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);

    println!("lock-protected counter increments, {ops} per thread\n");
    println!(
        "{:<16} {:>8} {:>12} {:>16} {:>14}",
        "lock", "threads", "total ms", "fences/acquire", "ns/acquire"
    );

    let mut threads = 1;
    while threads <= max_threads {
        for lock in all_hw_locks(max_threads.max(2)) {
            let counter = Arc::new(AtomicU64::new(0));
            let fences_before = lock.fences();
            let start = Instant::now();
            crossbeam::scope(|s| {
                for tid in 0..threads {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    s.spawn(move |_| {
                        for _ in 0..ops {
                            let token = lock.acquire(tid);
                            counter.fetch_add(1, Ordering::Relaxed);
                            lock.release(tid, token);
                        }
                    });
                }
            })
            .unwrap();
            let elapsed = start.elapsed();
            let total_ops = (threads * ops) as u64;
            assert_eq!(counter.load(Ordering::Relaxed), total_ops);
            let fences = lock.fences() - fences_before;
            println!(
                "{:<16} {:>8} {:>12.2} {:>16.2} {:>14.1}",
                lock.name(),
                threads,
                elapsed.as_secs_f64() * 1e3,
                fences as f64 / total_ops as f64,
                elapsed.as_nanos() as f64 / total_ops as f64,
            );
        }
        println!();
        threads *= 2;
    }
    println!(
        "note: fences/acquire of hw-tree grows with log2(threads capacity); ticket and\n\
         anderson stay at 2 thanks to fetch&add — a primitive outside the paper's model;\n\
         hw-fastpath is adaptive: ~3 solo, growing under contention."
    );
}

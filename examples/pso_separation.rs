//! The TSO/PSO separation, live: search for a bakery exclusion violation
//! under PSO, minimise the witness schedule, and print its timeline.
//!
//! ```sh
//! cargo run --release --example pso_separation
//! ```

use tpa::algos::sim::bakery::BakeryLock;
use tpa::prelude::*;
use tpa::tso::machine::NextEvent;
use tpa::tso::sched::XorShift;
use tpa::tso::shrink::{exclusion_violated, shrink_schedule};
use tpa::tso::{trace, MemoryModel};

/// Random PSO search: returns a violating directive sequence, if found.
fn find_violation(seed: u64) -> Option<Vec<Directive>> {
    let lock = BakeryLock::new(2, 1);
    let mut machine = Machine::with_model(&lock, MemoryModel::Pso);
    let mut rng = XorShift::new(seed ^ 0xABCDEF);
    for _ in 0..5_000 {
        let runnable: Vec<ProcId> = (0..2)
            .map(ProcId)
            .filter(|&p| machine.peek_next(p) != NextEvent::Halted || !machine.buffer_empty(p))
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let p = runnable[rng.below(runnable.len())];
        let pending = machine.pending_vars(p);
        let commit =
            !pending.is_empty() && (machine.peek_next(p) == NextEvent::Halted || rng.chance(64));
        let d = if commit {
            Directive::CommitVar(p, pending[rng.below(pending.len())])
        } else if machine.peek_next(p) != NextEvent::Halted {
            Directive::Issue(p)
        } else {
            continue;
        };
        machine.step(d).ok()?;
        if exclusion_violated(&machine) {
            return Some(machine.schedule().to_vec());
        }
    }
    None
}

fn main() {
    println!("searching for a PSO exclusion violation on the plain bakery lock (n = 2)…");
    let mut witness = None;
    for seed in 0..5_000u64 {
        if let Some(schedule) = find_violation(seed) {
            println!(
                "violation found at seed {seed}: {} directives",
                schedule.len()
            );
            witness = Some(schedule);
            break;
        }
    }
    let Some(schedule) = witness else {
        eprintln!("no violation found (unexpected — see tests/pso.rs)");
        std::process::exit(1);
    };

    let lock = BakeryLock::new(2, 1);
    let shrunk = shrink_schedule(&lock, MemoryModel::Pso, &schedule, exclusion_violated);
    println!("minimised to {} directives; timeline:\n", shrunk.len());

    let mut machine = Machine::with_model(&lock, MemoryModel::Pso);
    for d in &shrunk {
        machine.step(*d).unwrap();
    }
    println!("{}", trace::timeline(machine.log(), 2));
    println!("both processes are now enabled to execute CS: mutual exclusion is broken.");
    println!("(Under TSO the reordered commit is rejected; BakeryLock::pso_hardened fixes");
    println!(" PSO at the price of exactly one extra fence — see tests/pso.rs.)");
}

//! Quickstart: simulate a lock on the TSO machine, read its complexity
//! metrics, and run the paper's adversary against it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tpa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build an 8-process tournament lock where each process performs
    //    one passage, and drive it with a fair scheduler that keeps writes
    //    buffered as long as TSO allows (the adversary's favourite policy).
    let lock = lock_by_name("tournament", 8, 1).expect("registry entry");
    let (machine, stats) = run_round_robin(lock.as_ref(), CommitPolicy::Lazy, 1_000_000)?;
    assert!(stats.all_halted);

    println!("tournament lock, n = 8, one passage each:");
    for (pid, metrics) in machine.metrics().iter() {
        let span = &metrics.completed[0].counters;
        println!(
            "  {pid}: {} fences, {} DSM RMRs, {} CC-WB RMRs, {} critical events",
            span.fences, span.rmr_dsm, span.rmr_wb, span.critical
        );
    }

    // 2. Under TSO, reads may overtake buffered writes: the classic store
    //    buffer litmus test, straight from the simulator.
    use tpa::tso::scripted::{Instr, ScriptSystem};
    let litmus = ScriptSystem::new(2, 2, |pid| {
        let me = pid.0;
        vec![
            Instr::Write { var: me, value: 1 },
            Instr::Read {
                var: 1 - me,
                reg: 0,
            },
            Instr::Halt,
        ]
    });
    let mut m = Machine::new(&litmus);
    for p in [ProcId(0), ProcId(1)] {
        m.step(Directive::Issue(p))?; // both writes buffered
    }
    for p in [ProcId(0), ProcId(1)] {
        m.step(Directive::Issue(p))?; // both reads see 0
    }
    println!(
        "\nstore-buffer litmus: r0 = {:?}, r1 = {:?} (both 0: TSO reordering observed)",
        m.program(ProcId(0)).unwrap().register(0),
        m.program(ProcId(1)).unwrap().register(0),
    );

    // 3. Run the paper's adversary: every completed round forces one more
    //    fence into a single passage.
    let lock = lock_by_name("tournament", 64, 1).expect("registry entry");
    let outcome = Construction::new(lock.as_ref(), Config::default())
        .map_err(|e| e.to_string())?
        .run();
    println!(
        "\nadversary vs tournament (n = 64): forced {} fences at total contention {} ({})",
        outcome.fences_forced(),
        outcome.fences_forced() + 1,
        outcome.stop,
    );
    Ok(())
}
